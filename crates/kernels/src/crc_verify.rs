//! A cut-through CRC64 verify stage: end-to-end integrity on streams.
//!
//! §6.3's consistency kernel checks CRCs on *reads*; this kernel is its
//! streaming dual for *writes* and kernel pipelines: the sender appends an
//! 8 B CRC64 trailer, the stage forwards the payload cut-through while
//! accumulating the running CRC (the slice-by-16 [`crate::crc64::Crc64`]),
//! withholding only the trailing 8 bytes. At end of stream the withheld
//! trailer is compared against the computed digest — on a match a 16 B
//! verdict `(crc, payload_len)` goes to the requester; on a mismatch the
//! stage raises the in-band [`crate::framework::ERR_INCONSISTENT`]
//! sentinel, which a [`crate::framework::KernelChain`] latches to starve
//! downstream stages (corrupted data never reaches them).
//!
//! Because the stage lags the stream by exactly 8 bytes it adds one word
//! of latency — the cut-through property that makes it composable ahead of
//! shuffle/filter stages without store-and-forward buffering.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::crc64::Crc64;
use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_INCONSISTENT,
};

/// Parameters of the CRC verify stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcVerifyParams {
    /// Requester-side address the 16 B verdict is written to.
    pub target_address: u64,
}

impl CrcVerifyParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.target_address.to_le_bytes())
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<CrcVerifyParams> {
        if buf.len() < 8 {
            return None;
        }
        Some(CrcVerifyParams {
            target_address: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
        })
    }
}

/// Appends the CRC64 trailer this stage expects to a payload (sender-side
/// helper).
pub fn append_trailer(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.extend_from_slice(&crate::crc64::crc64(payload).to_le_bytes());
    out
}

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    Active {
        qpn: Qpn,
        target: u64,
    },
}

/// The CRC verify stage FSM.
#[derive(Debug, Default)]
pub struct CrcVerifyKernel {
    state: State,
    /// Running CRC over the *released* (forwarded) bytes.
    crc: Crc64,
    /// The last ≤ 8 bytes seen — candidate trailer, withheld from the
    /// forward stream until more data proves it is payload.
    tail: Vec<u8>,
    /// Payload bytes released downstream so far.
    released: u64,
}

impl CrcVerifyKernel {
    /// Creates an unconfigured stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes the 16 B verdict `(crc, payload_len)`.
    pub fn encode_verdict(crc: u64, payload_len: u64) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&crc.to_le_bytes());
        out[8..16].copy_from_slice(&payload_len.to_le_bytes());
        out
    }

    /// Decodes a verdict into `(crc, payload_len)`.
    pub fn decode_verdict(buf: &[u8]) -> Option<(u64, u64)> {
        if buf.len() < 16 {
            return None;
        }
        Some((
            u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
        ))
    }
}

impl Kernel for CrcVerifyKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::CRC_VERIFY
    }

    fn name(&self) -> &'static str {
        "crc-verify"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = CrcVerifyParams::decode(&params) else {
                    return Vec::new();
                };
                self.crc = Crc64::new();
                self.tail.clear();
                self.released = 0;
                self.state = State::Active {
                    qpn,
                    target: p.target_address,
                };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                let State::Active { qpn, target } = self.state else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                // Lag the stream by 8 bytes: everything older is payload.
                let mut window = std::mem::take(&mut self.tail);
                window.extend_from_slice(&data);
                if window.len() > 8 {
                    let release = &window[..window.len() - 8];
                    self.crc.update(release);
                    self.released += release.len() as u64;
                    out.push(KernelAction::Forward {
                        data: Bytes::copy_from_slice(release),
                        last: false,
                    });
                    self.tail = window[window.len() - 8..].to_vec();
                } else {
                    self.tail = window;
                }
                if last {
                    if self.tail.len() < 8 {
                        // Stream shorter than the trailer: malformed.
                        out.push(KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: target,
                            data: Bytes::copy_from_slice(&error_word(ERR_BAD_PARAMS)),
                        });
                    } else {
                        let expected =
                            u64::from_le_bytes(self.tail[..8].try_into().expect("sized"));
                        let computed = self.crc.finish();
                        if computed == expected {
                            out.push(KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target,
                                data: Bytes::copy_from_slice(&Self::encode_verdict(
                                    computed,
                                    self.released,
                                )),
                            });
                        } else {
                            out.push(KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target,
                                data: Bytes::copy_from_slice(&error_word(ERR_INCONSISTENT)),
                            });
                        }
                    }
                    out.push(KernelAction::Done);
                }
                out
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::decode_error;

    fn configured() -> CrcVerifyKernel {
        let mut k = CrcVerifyKernel::new();
        let a = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: CrcVerifyParams {
                target_address: 0x6000,
            }
            .encode(),
        });
        assert_eq!(a, vec![KernelAction::Done]);
        k
    }

    fn drive(k: &mut CrcVerifyKernel, stream: &[u8], chunk: usize) -> Vec<KernelAction> {
        let mut all = Vec::new();
        let mut fed = 0;
        for c in stream.chunks(chunk.max(1)) {
            fed += c.len();
            all.extend(k.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(c),
                last: fed == stream.len(),
            }));
        }
        if stream.is_empty() {
            all.extend(k.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::new(),
                last: true,
            }));
        }
        all
    }

    fn forwarded(actions: &[KernelAction]) -> Vec<u8> {
        let mut out = Vec::new();
        for a in actions {
            if let KernelAction::Forward { data, .. } = a {
                out.extend_from_slice(data);
            }
        }
        out
    }

    fn verdict(actions: &[KernelAction]) -> Bytes {
        actions
            .iter()
            .find_map(|a| match a {
                KernelAction::RoceSend { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("verdict send")
    }

    #[test]
    fn valid_stream_forwards_payload_and_reports_crc() {
        let payload: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        let stream = append_trailer(&payload);
        for chunk in [1usize, 7, 8, 9, 1440, stream.len()] {
            let mut k = configured();
            let actions = drive(&mut k, &stream, chunk);
            assert_eq!(forwarded(&actions), payload, "chunk = {chunk}");
            let (crc, len) = CrcVerifyKernel::decode_verdict(&verdict(&actions)).unwrap();
            assert_eq!(crc, crate::crc64::crc64(&payload));
            assert_eq!(len, payload.len() as u64);
            assert_eq!(*actions.last().unwrap(), KernelAction::Done);
        }
    }

    #[test]
    fn corrupted_payload_raises_the_sentinel() {
        let payload = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut stream = append_trailer(&payload);
        stream[10] ^= 0x40; // Flip one payload bit.
        let mut k = configured();
        let actions = drive(&mut k, &stream, 13);
        let v = verdict(&actions);
        assert_eq!(v.len(), 8, "sentinel is one word");
        let word = u64::from_le_bytes(v[..].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_INCONSISTENT));
    }

    #[test]
    fn corrupted_trailer_raises_the_sentinel() {
        let payload = vec![0xAAu8; 100];
        let mut stream = append_trailer(&payload);
        let n = stream.len();
        stream[n - 1] ^= 0x01;
        let mut k = configured();
        let actions = drive(&mut k, &stream, 32);
        let word = u64::from_le_bytes(verdict(&actions)[..].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_INCONSISTENT));
    }

    #[test]
    fn short_stream_is_bad_params() {
        let mut k = configured();
        let actions = drive(&mut k, b"abc", 3);
        assert!(forwarded(&actions).is_empty());
        let word = u64::from_le_bytes(verdict(&actions)[..].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_BAD_PARAMS));
    }

    #[test]
    fn empty_payload_with_trailer_verifies() {
        // An empty payload still carries its (fixed) CRC trailer.
        let stream = append_trailer(&[]);
        assert_eq!(stream.len(), 8);
        let mut k = configured();
        let actions = drive(&mut k, &stream, 8);
        assert!(forwarded(&actions).is_empty());
        let (crc, len) = CrcVerifyKernel::decode_verdict(&verdict(&actions)).unwrap();
        assert_eq!((crc, len), (crate::crc64::crc64(&[]), 0));
    }

    #[test]
    fn data_before_configuration_is_ignored() {
        let mut k = CrcVerifyKernel::new();
        assert!(k
            .on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::from_static(b"xxxxxxxxxx"),
                last: true,
            })
            .is_empty());
    }
}
