//! Host-side data-structure layouts the StRoM kernels operate on.
//!
//! The traversal kernel assumes "each data structure element cannot exceed
//! 64 B, the key has a fixed size of 8 B, and the fields within the
//! element are 4 B aligned" (§6.2). This module builds the structures the
//! experiments use, directly in simulated host memory:
//!
//! - the **linked list** of Figure 6 (key / next / value pointer), with
//!   the exact field positions the paper quotes (`keyMask = 1`,
//!   `valuePtrPosition = 4`, `nextElementPtrPosition = 2`);
//! - the **Pilaf-style hash table** of §6.2/§5.2: fixed-size 64 B entries
//!   of 3 buckets (key, value pointer, value length), values in a separate
//!   region — "the first one contains fix-sized hash table entries which
//!   point to the corresponding data value and the second one contains all
//!   the values";
//! - the **CRC-stamped object store** of §6.3 (8 B CRC64 header per
//!   object, Pilaf-style checksums).

use strom_mem::HostMemory;

use crate::crc64::crc64;

/// Size of one data-structure element (§6.2).
pub const ELEMENT_SIZE: u64 = 64;

/// 4-byte field positions within a linked-list element (Figure 6):
/// key at position 0, next pointer at 2, value pointer at 4, value length
/// at 6 — matching the paper's parameter example exactly.
pub mod list_layout {
    /// Key position (4 B units).
    pub const KEY_POS: u8 = 0;
    /// Next-element pointer position.
    pub const NEXT_POS: u8 = 2;
    /// Value pointer position.
    pub const VALUE_PTR_POS: u8 = 4;
    /// Value length position.
    pub const VALUE_LEN_POS: u8 = 6;
}

/// 4-byte field positions within a hash-table entry: three 20 B buckets
/// (key 8 B, value pointer 8 B, value length 4 B) at positions 0, 5, 10.
pub mod ht_layout {
    /// Key positions of the three buckets (4 B units).
    pub const BUCKET_KEY_POS: [u8; 3] = [0, 5, 10];
    /// Value pointer offset relative to its bucket's key (4 B units).
    pub const VALUE_PTR_REL: u8 = 2;
    /// Value length offset relative to its bucket's key (4 B units).
    pub const VALUE_LEN_REL: u8 = 4;
}

/// A linked list placed in host memory.
#[derive(Debug, Clone)]
pub struct LinkedList {
    /// Address of the head element.
    pub head: u64,
    /// Keys, in list order.
    pub keys: Vec<u64>,
    /// Address of each element, in list order.
    pub element_addrs: Vec<u64>,
    /// Address of each value, in list order.
    pub value_addrs: Vec<u64>,
    /// Value size in bytes.
    pub value_size: u32,
}

/// Builds a linked list of `keys.len()` elements starting at `base`.
///
/// Elements are laid out contiguously, followed by the value region. Each
/// value is filled with a deterministic pattern derived from its key so
/// integrity can be verified end-to-end.
///
/// # Panics
///
/// Panics if `keys` is empty.
pub fn build_linked_list(
    mem: &mut HostMemory,
    base: u64,
    keys: &[u64],
    value_size: u32,
) -> LinkedList {
    assert!(!keys.is_empty(), "a list needs at least one element");
    let n = keys.len() as u64;
    let value_base = base + n * ELEMENT_SIZE;
    let mut element_addrs = Vec::with_capacity(keys.len());
    let mut value_addrs = Vec::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let elem = base + i as u64 * ELEMENT_SIZE;
        let value = value_base + i as u64 * u64::from(value_size);
        let next = if (i as u64) + 1 < n {
            base + (i as u64 + 1) * ELEMENT_SIZE
        } else {
            0 // Null: tail of the list.
        };
        let mut buf = [0u8; ELEMENT_SIZE as usize];
        buf[0..8].copy_from_slice(&key.to_le_bytes());
        buf[8..16].copy_from_slice(&next.to_le_bytes());
        buf[16..24].copy_from_slice(&value.to_le_bytes());
        buf[24..28].copy_from_slice(&value_size.to_le_bytes());
        mem.write(elem, &buf);
        mem.write(value, &value_pattern(key, value_size));
        element_addrs.push(elem);
        value_addrs.push(value);
    }
    LinkedList {
        head: base,
        keys: keys.to_vec(),
        element_addrs,
        value_addrs,
        value_size,
    }
}

/// The deterministic value payload for `key` (verifiable end-to-end).
pub fn value_pattern(key: u64, value_size: u32) -> Vec<u8> {
    (0..value_size)
        .map(|i| (key.wrapping_mul(0x9E37_79B9).wrapping_add(u64::from(i)) & 0xff) as u8)
        .collect()
}

/// A Pilaf-style hash table placed in host memory.
#[derive(Debug, Clone)]
pub struct HashTable {
    /// Address of entry 0.
    pub entries_base: u64,
    /// Number of 64 B entries.
    pub num_entries: u64,
    /// Value size in bytes (fixed per table in the experiments).
    pub value_size: u32,
    /// Base of the value region.
    pub value_base: u64,
}

impl HashTable {
    /// The entry address a key hashes to.
    pub fn entry_addr(&self, key: u64) -> u64 {
        let idx = crate::hash::mix64(key) % self.num_entries;
        self.entries_base + idx * ELEMENT_SIZE
    }
}

/// Builds a hash table of `num_entries` entries at `base`, inserting
/// `keys`. Each key is placed in one of its entry's 3 buckets (first
/// free); the experiments pick keys without bucket overflow, mirroring the
/// paper's "always exactly one matching key" assumption (§5.2).
///
/// # Panics
///
/// Panics if a key's entry already has 3 occupants (bucket overflow) or a
/// duplicate key is inserted.
pub fn build_hash_table(
    mem: &mut HostMemory,
    base: u64,
    num_entries: u64,
    keys: &[u64],
    value_size: u32,
) -> HashTable {
    assert!(num_entries > 0, "hash table needs entries");
    let table = HashTable {
        entries_base: base,
        num_entries,
        value_size,
        value_base: base + num_entries * ELEMENT_SIZE,
    };
    // Zero the entry region so empty buckets read as key 0 (reserved).
    for i in 0..num_entries {
        mem.write(base + i * ELEMENT_SIZE, &[0u8; ELEMENT_SIZE as usize]);
    }
    for (i, &key) in keys.iter().enumerate() {
        assert_ne!(key, 0, "key 0 is the empty-bucket marker");
        let entry = table.entry_addr(key);
        let mut buf: Vec<u8> = mem.read(entry, ELEMENT_SIZE as usize);
        let value_addr = table.value_base + i as u64 * u64::from(value_size);
        let mut placed = false;
        for b in 0..3usize {
            let off = usize::from(ht_layout::BUCKET_KEY_POS[b]) * 4;
            let existing = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
            assert_ne!(existing, key, "duplicate key {key:#x}");
            if existing == 0 {
                buf[off..off + 8].copy_from_slice(&key.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&value_addr.to_le_bytes());
                buf[off + 16..off + 20].copy_from_slice(&value_size.to_le_bytes());
                placed = true;
                break;
            }
        }
        assert!(placed, "bucket overflow for key {key:#x}");
        mem.write(entry, &buf);
        mem.write(value_addr, &value_pattern(key, value_size));
    }
    table
}

/// A CRC-stamped object store (§6.3): each object is
/// `[crc64 of payload (8 B)] [payload]`.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    /// Address of each object header.
    pub object_addrs: Vec<u64>,
    /// Payload size (excluding the 8 B CRC header).
    pub payload_size: u32,
}

impl ObjectStore {
    /// Total on-wire size of one object (header + payload).
    pub fn object_size(&self) -> u32 {
        self.payload_size + 8
    }
}

/// Builds `count` objects of `payload_size` bytes each at `base`.
pub fn build_object_store(
    mem: &mut HostMemory,
    base: u64,
    count: u64,
    payload_size: u32,
) -> ObjectStore {
    let size = u64::from(payload_size) + 8;
    let mut object_addrs = Vec::with_capacity(count as usize);
    for i in 0..count {
        let addr = base + i * size;
        let payload = value_pattern(i + 1, payload_size);
        let crc = crc64(&payload);
        mem.write(addr, &crc.to_le_bytes());
        mem.write(addr + 8, &payload);
        object_addrs.push(addr);
    }
    ObjectStore {
        object_addrs,
        payload_size,
    }
}

/// A two-lane skip list placed in host memory (§6.2 names skip lists as
/// one of the structures the traversal kernel handles).
///
/// The **base lane** is an ordinary sorted linked list of all keys. The
/// **express lane** samples every `stride`-th base element; each express
/// element stores the *lookahead* key (the key of the *next* express
/// element, `u64::MAX` at the tail) in its key slot and a *down pointer*
/// to its base-lane element in its value-pointer slot. A lookup is then
/// two kernel invocations with unchanged kernel code:
///
/// 1. traverse the express lane with `GreaterThan`: the first element
///    whose lookahead key exceeds the probe "matches", and its "value" —
///    8 bytes read through the value pointer — is the down pointer;
/// 2. traverse the base lane from that element with `Equal`.
///
/// Total PCIe reads ≈ `n/stride + stride` instead of `n`.
#[derive(Debug, Clone)]
pub struct SkipList {
    /// Head of the express lane.
    pub express_head: u64,
    /// The base lane (a [`LinkedList`] over all keys, sorted).
    pub base: LinkedList,
    /// Express sampling stride.
    pub stride: usize,
}

/// Builds a two-lane skip list over `sorted_keys` at `base_addr`.
///
/// # Panics
///
/// Panics if `sorted_keys` is empty or not strictly ascending, or if
/// `stride` is zero.
pub fn build_skip_list(
    mem: &mut HostMemory,
    base_addr: u64,
    sorted_keys: &[u64],
    value_size: u32,
    stride: usize,
) -> SkipList {
    assert!(stride > 0, "stride must be positive");
    assert!(!sorted_keys.is_empty(), "skip list needs keys");
    assert!(
        sorted_keys.windows(2).all(|w| w[0] < w[1]),
        "keys must be strictly ascending"
    );
    // Base lane first: elements + values.
    let base = build_linked_list(mem, base_addr, sorted_keys, value_size);

    // Express lane after the base lane's value region.
    let express_base = base.value_addrs.last().expect("non-empty") + u64::from(value_size);
    let express_base = express_base.div_ceil(ELEMENT_SIZE) * ELEMENT_SIZE;
    let samples: Vec<usize> = (0..sorted_keys.len()).step_by(stride).collect();
    // Each express element is followed by its 8 B "value": the down
    // pointer the kernel reads through the value-pointer slot.
    let slot = ELEMENT_SIZE + 8;
    for (i, &sample_idx) in samples.iter().enumerate() {
        let elem = express_base + i as u64 * slot;
        let down_slot = elem + ELEMENT_SIZE;
        let lookahead = samples
            .get(i + 1)
            .map(|&next| sorted_keys[next])
            .unwrap_or(u64::MAX);
        let next_elem = if i + 1 < samples.len() {
            express_base + (i as u64 + 1) * slot
        } else {
            0
        };
        let mut buf = [0u8; ELEMENT_SIZE as usize];
        buf[0..8].copy_from_slice(&lookahead.to_le_bytes());
        buf[8..16].copy_from_slice(&next_elem.to_le_bytes());
        buf[16..24].copy_from_slice(&down_slot.to_le_bytes());
        mem.write(elem, &buf);
        mem.write(down_slot, &base.element_addrs[sample_idx].to_le_bytes());
    }
    SkipList {
        express_head: express_base,
        base,
        stride,
    }
}

impl SkipList {
    /// Phase-1 parameters: find the express segment covering `probe` and
    /// return its 8 B down pointer to `target_address` on the requester.
    pub fn express_params(
        &self,
        probe: u64,
        target_address: u64,
    ) -> crate::traversal::TraversalParams {
        use crate::traversal::{Predicate, TraversalParams};
        TraversalParams {
            remote_address: self.express_head,
            value_size: 8, // The down pointer.
            key: probe,
            key_mask: 1,
            predicate: Predicate::GreaterThan,
            value_ptr_position: 4,
            is_relative_position: false,
            next_element_ptr_position: 2,
            next_element_ptr_valid: true,
            target_address,
        }
    }

    /// Phase-2 parameters: exact lookup on the base lane starting from
    /// the `down_ptr` returned by phase 1.
    pub fn base_params(
        &self,
        down_ptr: u64,
        probe: u64,
        target_address: u64,
    ) -> crate::traversal::TraversalParams {
        let mut p = crate::traversal::TraversalParams::for_linked_list(
            down_ptr,
            probe,
            self.base.value_size,
            target_address,
        );
        p.remote_address = down_ptr;
        p
    }
}

/// 4-byte field positions of a *chained* hash-table entry: two 20 B
/// buckets plus an 8 B next-entry pointer — §6.2: "the remote NIC could
/// either return an error code or fetch the next hash table entry in case
/// the implementation uses chaining for collision resolution".
pub mod chained_layout {
    /// Key positions of the two buckets (4 B units).
    pub const BUCKET_KEY_POS: [u8; 2] = [0, 5];
    /// Value pointer offset relative to its bucket's key (4 B units).
    pub const VALUE_PTR_REL: u8 = 2;
    /// Next-entry (overflow chain) pointer position (4 B units).
    pub const NEXT_POS: u8 = 10;
    /// Buckets per entry.
    pub const BUCKETS: usize = 2;
    /// Per-bucket version counter positions (4 B units): the spare tail
    /// of the 64 B entry carries an 8 B version per bucket. Version 0 is
    /// the preloaded state; every PUT bumps its bucket's version, so
    /// concurrent PUTs are detectable and every committed update is
    /// countable.
    pub const VERSION_POS: [u8; 2] = [12, 14];

    /// Byte offset of bucket `b`'s key within the entry.
    pub fn key_off(b: usize) -> usize {
        usize::from(BUCKET_KEY_POS[b]) * 4
    }
    /// Byte offset of bucket `b`'s version within the entry.
    pub fn version_off(b: usize) -> usize {
        usize::from(VERSION_POS[b]) * 4
    }
    /// Byte offset of the next-entry pointer within the entry.
    pub fn next_off() -> usize {
        usize::from(NEXT_POS) * 4
    }
}

/// A chained hash table: 2-bucket entries with overflow chains.
#[derive(Debug, Clone)]
pub struct ChainedHashTable {
    /// Address of entry 0.
    pub entries_base: u64,
    /// Number of primary 64 B entries.
    pub num_entries: u64,
    /// Value size in bytes.
    pub value_size: u32,
    /// Overflow entries allocated (diagnostics).
    pub overflow_entries: u64,
}

impl ChainedHashTable {
    /// The primary entry address a key hashes to.
    pub fn entry_addr(&self, key: u64) -> u64 {
        let idx = crate::hash::mix64(key) % self.num_entries;
        self.entries_base + idx * ELEMENT_SIZE
    }
}

/// Builds a chained hash table at `base`: `num_entries` primary entries,
/// overflow entries allocated past them as chains fill up.
///
/// # Panics
///
/// Panics on duplicate or zero keys.
pub fn build_chained_hash_table(
    mem: &mut HostMemory,
    base: u64,
    num_entries: u64,
    keys: &[u64],
    value_size: u32,
) -> ChainedHashTable {
    assert!(num_entries > 0, "hash table needs entries");
    let mut table = ChainedHashTable {
        entries_base: base,
        num_entries,
        value_size,
        overflow_entries: 0,
    };
    // Region plan: primary entries, overflow arena, then values.
    let overflow_base = base + num_entries * ELEMENT_SIZE;
    let max_overflow = keys.len() as u64; // Worst case: one per key.
    let value_base = overflow_base + max_overflow * ELEMENT_SIZE;
    let mut next_overflow = overflow_base;
    for i in 0..num_entries {
        mem.write(base + i * ELEMENT_SIZE, &[0u8; ELEMENT_SIZE as usize]);
    }
    for (i, &key) in keys.iter().enumerate() {
        assert_ne!(key, 0, "key 0 is the empty-bucket marker");
        let value_addr = value_base + i as u64 * u64::from(value_size);
        mem.write(value_addr, &value_pattern(key, value_size));
        // Walk the chain to the first entry with a free bucket.
        let mut entry = table.entry_addr(key);
        loop {
            let mut buf: Vec<u8> = mem.read(entry, ELEMENT_SIZE as usize);
            let mut placed = false;
            for b in 0..chained_layout::BUCKETS {
                let off = usize::from(chained_layout::BUCKET_KEY_POS[b]) * 4;
                let existing = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
                assert_ne!(existing, key, "duplicate key {key:#x}");
                if existing == 0 {
                    buf[off..off + 8].copy_from_slice(&key.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&value_addr.to_le_bytes());
                    buf[off + 16..off + 20].copy_from_slice(&value_size.to_le_bytes());
                    placed = true;
                    break;
                }
            }
            if placed {
                mem.write(entry, &buf);
                break;
            }
            // Both buckets full: follow (or allocate) the overflow entry.
            let next_off = usize::from(chained_layout::NEXT_POS) * 4;
            let next = u64::from_le_bytes(buf[next_off..next_off + 8].try_into().expect("sized"));
            if next != 0 {
                entry = next;
                continue;
            }
            let fresh = next_overflow;
            next_overflow += ELEMENT_SIZE;
            table.overflow_entries += 1;
            mem.write(fresh, &[0u8; ELEMENT_SIZE as usize]);
            buf[next_off..next_off + 8].copy_from_slice(&fresh.to_le_bytes());
            mem.write(entry, &buf);
            entry = fresh;
        }
    }
    table
}

impl ChainedHashTable {
    /// Traversal-kernel parameters for a chained GET: match either bucket,
    /// follow the overflow chain on miss (§6.2's chaining case).
    pub fn get_params(&self, key: u64, target_address: u64) -> crate::traversal::TraversalParams {
        use crate::traversal::{Predicate, TraversalParams};
        let mut mask = 0u16;
        for pos in chained_layout::BUCKET_KEY_POS {
            mask |= 1 << pos;
        }
        TraversalParams {
            remote_address: self.entry_addr(key),
            value_size: self.value_size,
            key,
            key_mask: mask,
            predicate: Predicate::Equal,
            value_ptr_position: chained_layout::VALUE_PTR_REL,
            is_relative_position: true,
            next_element_ptr_position: chained_layout::NEXT_POS,
            next_element_ptr_valid: true,
            target_address,
        }
    }
}

/// The deterministic payload of `key` at `version` — version 0 is the
/// preloaded [`value_pattern`], so a never-updated key verifies with the
/// plain pattern and every PUT rewrites the slot with the next version's
/// pattern (end-to-end verifiable under concurrency).
pub fn versioned_value_pattern(key: u64, version: u64, value_size: u32) -> Vec<u8> {
    if version == 0 {
        value_pattern(key, value_size)
    } else {
        value_pattern(
            key.wrapping_add(version.wrapping_mul(0xA24B_AED4_963E_E407)),
            value_size,
        )
    }
}

/// A KV store region: a versioned chained hash table plus the spare
/// arenas the on-NIC PUT kernel allocates inserts from.
///
/// Region plan (all inside one pinned range starting at
/// `table.entries_base`):
///
/// ```text
/// [primary entries][overflow entries: preloaded + spare]
/// [value slots: preloaded + spare]
/// ```
///
/// Every value slot is exactly `value_size` bytes; the builder reports
/// the first free overflow entry and value slot so the host can hand the
/// PUT kernel its allocation window.
#[derive(Debug, Clone)]
pub struct KvStore {
    /// The chained hash table (preloaded keys at version 0).
    pub table: ChainedHashTable,
    /// First free overflow entry (the PUT kernel's entry arena cursor).
    pub entry_arena_next: u64,
    /// End of the overflow entry arena (exclusive).
    pub entry_arena_end: u64,
    /// First free value slot (the PUT kernel's value arena cursor).
    pub value_arena_next: u64,
    /// End of the value arena (exclusive).
    pub value_arena_end: u64,
}

impl KvStore {
    /// Total bytes the region plan occupies from the table base.
    pub fn region_len(num_entries: u64, capacity_keys: u64, value_size: u32) -> u64 {
        (num_entries + capacity_keys) * ELEMENT_SIZE + capacity_keys * u64::from(value_size)
    }

    /// The primary entry address a key hashes to.
    pub fn entry_addr(&self, key: u64) -> u64 {
        self.table.entry_addr(key)
    }

    /// Host-side chain walk: `(version, value_ptr)` of `key`, if present.
    /// Used by the load generator to audit the kernels' effects.
    pub fn lookup(&self, mem: &mut HostMemory, key: u64) -> Option<(u64, u64)> {
        let mut entry = self.entry_addr(key);
        while entry != 0 {
            let buf = mem.read(entry, ELEMENT_SIZE as usize);
            for b in 0..chained_layout::BUCKETS {
                let off = chained_layout::key_off(b);
                let k = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
                if k == key {
                    let ptr = u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("sized"));
                    let voff = chained_layout::version_off(b);
                    let version =
                        u64::from_le_bytes(buf[voff..voff + 8].try_into().expect("sized"));
                    return Some((version, ptr));
                }
            }
            let noff = chained_layout::next_off();
            entry = u64::from_le_bytes(buf[noff..noff + 8].try_into().expect("sized"));
        }
        None
    }
}

/// Builds a KV store at `base`: a chained hash table preloaded with
/// `keys` (version 0), plus arena headroom for `spare_keys` future
/// on-NIC inserts.
///
/// # Panics
///
/// Panics on duplicate or zero keys.
pub fn build_kv_store(
    mem: &mut HostMemory,
    base: u64,
    num_entries: u64,
    keys: &[u64],
    value_size: u32,
    spare_keys: u64,
) -> KvStore {
    assert!(num_entries > 0, "hash table needs entries");
    let capacity = keys.len() as u64 + spare_keys;
    let overflow_base = base + num_entries * ELEMENT_SIZE;
    let value_base = overflow_base + capacity * ELEMENT_SIZE;
    let value_end = value_base + capacity * u64::from(value_size);
    let mut table = ChainedHashTable {
        entries_base: base,
        num_entries,
        value_size,
        overflow_entries: 0,
    };
    let mut next_overflow = overflow_base;
    let mut next_value = value_base;
    for i in 0..num_entries {
        mem.write(base + i * ELEMENT_SIZE, &[0u8; ELEMENT_SIZE as usize]);
    }
    for &key in keys {
        assert_ne!(key, 0, "key 0 is the empty-bucket marker");
        let value_addr = next_value;
        next_value += u64::from(value_size);
        mem.write(value_addr, &versioned_value_pattern(key, 0, value_size));
        let mut entry = table.entry_addr(key);
        loop {
            let mut buf: Vec<u8> = mem.read(entry, ELEMENT_SIZE as usize);
            let mut placed = false;
            for b in 0..chained_layout::BUCKETS {
                let off = chained_layout::key_off(b);
                let existing = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
                assert_ne!(existing, key, "duplicate key {key:#x}");
                if existing == 0 {
                    buf[off..off + 8].copy_from_slice(&key.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&value_addr.to_le_bytes());
                    buf[off + 16..off + 20].copy_from_slice(&value_size.to_le_bytes());
                    // Version 0: zeroed slot already says so, written
                    // explicitly for clarity.
                    let voff = chained_layout::version_off(b);
                    buf[voff..voff + 8].copy_from_slice(&0u64.to_le_bytes());
                    placed = true;
                    break;
                }
            }
            if placed {
                mem.write(entry, &buf);
                break;
            }
            let noff = chained_layout::next_off();
            let next = u64::from_le_bytes(buf[noff..noff + 8].try_into().expect("sized"));
            if next != 0 {
                entry = next;
                continue;
            }
            let fresh = next_overflow;
            assert!(
                fresh + ELEMENT_SIZE <= value_base,
                "overflow arena exhausted during preload"
            );
            next_overflow += ELEMENT_SIZE;
            table.overflow_entries += 1;
            mem.write(fresh, &[0u8; ELEMENT_SIZE as usize]);
            buf[noff..noff + 8].copy_from_slice(&fresh.to_le_bytes());
            mem.write(entry, &buf);
            entry = fresh;
        }
    }
    KvStore {
        table,
        entry_arena_next: next_overflow,
        entry_arena_end: value_base,
        value_arena_next: next_value,
        value_arena_end: value_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strom_mem::HUGE_PAGE_SIZE;

    fn mem_with_region(len: u64) -> (HostMemory, u64) {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(len.max(HUGE_PAGE_SIZE)).unwrap();
        (m, base)
    }

    #[test]
    fn linked_list_chains_correctly() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let keys = [11u64, 22, 33, 44];
        let list = build_linked_list(&mut m, base, &keys, 64);
        // Walk the chain by hand.
        let mut addr = list.head;
        for (i, &key) in keys.iter().enumerate() {
            let elem = m.read(addr, 64);
            let k = u64::from_le_bytes(elem[0..8].try_into().unwrap());
            let next = u64::from_le_bytes(elem[8..16].try_into().unwrap());
            let vptr = u64::from_le_bytes(elem[16..24].try_into().unwrap());
            assert_eq!(k, key);
            assert_eq!(vptr, list.value_addrs[i]);
            assert_eq!(m.read(vptr, 64), value_pattern(key, 64));
            if i + 1 < keys.len() {
                assert_eq!(next, list.element_addrs[i + 1]);
                addr = next;
            } else {
                assert_eq!(next, 0, "tail has a null next pointer");
            }
        }
    }

    #[test]
    fn hash_table_lookup_by_hand() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let keys: Vec<u64> = (1..=40).collect();
        let ht = build_hash_table(&mut m, base, 128, &keys, 32);
        for &key in &keys {
            let entry = m.read(ht.entry_addr(key), 64);
            let mut found = false;
            for b in 0..3usize {
                let off = usize::from(ht_layout::BUCKET_KEY_POS[b]) * 4;
                let k = u64::from_le_bytes(entry[off..off + 8].try_into().unwrap());
                if k == key {
                    let vptr = u64::from_le_bytes(entry[off + 8..off + 16].try_into().unwrap());
                    let vlen = u32::from_le_bytes(entry[off + 16..off + 20].try_into().unwrap());
                    assert_eq!(vlen, 32);
                    assert_eq!(m.read(vptr, 32), value_pattern(key, 32));
                    found = true;
                }
            }
            assert!(found, "key {key} not found in its entry");
        }
    }

    #[test]
    fn hash_table_uses_all_three_buckets() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        // One entry: every key lands in it, filling buckets 0, 1, 2.
        let keys = [5u64, 6, 7];
        let ht = build_hash_table(&mut m, base, 1, &keys, 16);
        let entry = m.read(ht.entries_base, 64);
        for (b, &key) in keys.iter().enumerate() {
            let off = usize::from(ht_layout::BUCKET_KEY_POS[b]) * 4;
            let k = u64::from_le_bytes(entry[off..off + 8].try_into().unwrap());
            assert_eq!(k, key, "bucket {b}");
        }
    }

    #[test]
    #[should_panic(expected = "bucket overflow")]
    fn fourth_key_in_one_entry_overflows() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let _ = build_hash_table(&mut m, base, 1, &[1, 2, 3, 4], 16);
    }

    #[test]
    fn object_store_crcs_verify() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let store = build_object_store(&mut m, base, 10, 256);
        assert_eq!(store.object_size(), 264);
        for &addr in &store.object_addrs {
            let stored_crc = u64::from_le_bytes(m.read(addr, 8).try_into().unwrap());
            let payload = m.read(addr + 8, 256);
            assert_eq!(crc64(&payload), stored_crc);
        }
    }

    #[test]
    fn corrupted_object_fails_crc() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let store = build_object_store(&mut m, base, 1, 64);
        let addr = store.object_addrs[0];
        let mut byte = m.read(addr + 20, 1);
        byte[0] ^= 0xff;
        m.write(addr + 20, &byte);
        let stored_crc = u64::from_le_bytes(m.read(addr, 8).try_into().unwrap());
        assert_ne!(crc64(&m.read(addr + 8, 64)), stored_crc);
    }

    #[test]
    fn skip_list_structure_is_consistent() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let keys: Vec<u64> = (1..=20).map(|i| i * 5).collect();
        let sl = build_skip_list(&mut m, base, &keys, 32, 4);
        // Walk the express lane by hand: lookahead keys ascend and down
        // pointers land on the sampled base elements.
        let mut addr = sl.express_head;
        let mut sample = 0usize;
        let mut prev_lookahead = 0u64;
        while addr != 0 {
            let elem = m.read(addr, 64);
            let lookahead = u64::from_le_bytes(elem[0..8].try_into().unwrap());
            let next = u64::from_le_bytes(elem[8..16].try_into().unwrap());
            let down_slot = u64::from_le_bytes(elem[16..24].try_into().unwrap());
            let down = m.read_u64(down_slot);
            assert!(lookahead > prev_lookahead);
            prev_lookahead = lookahead;
            assert_eq!(down, sl.base.element_addrs[sample], "sample {sample}");
            sample += 4;
            addr = next;
        }
        assert!(sample >= keys.len(), "every sample visited");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn skip_list_rejects_unsorted_keys() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let _ = build_skip_list(&mut m, base, &[5, 3, 8], 16, 2);
    }

    #[test]
    fn chained_hash_table_places_every_key() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        // 4 entries × 2 buckets = 8 primary slots for 30 keys: chains are
        // guaranteed.
        let keys: Vec<u64> = (1..=30).collect();
        let ht = build_chained_hash_table(&mut m, base, 4, &keys, 16);
        assert!(ht.overflow_entries > 0, "chains must have been needed");
        // Find each key by walking its chain manually.
        for &key in &keys {
            let mut entry = ht.entry_addr(key);
            let mut found = false;
            while entry != 0 && !found {
                let buf = m.read(entry, 64);
                for b in 0..chained_layout::BUCKETS {
                    let off = usize::from(chained_layout::BUCKET_KEY_POS[b]) * 4;
                    let k = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    if k == key {
                        let vptr = u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                        assert_eq!(m.read(vptr, 16), value_pattern(key, 16));
                        found = true;
                    }
                }
                let noff = usize::from(chained_layout::NEXT_POS) * 4;
                entry = u64::from_le_bytes(buf[noff..noff + 8].try_into().unwrap());
            }
            assert!(found, "key {key} must be reachable through its chain");
        }
    }

    #[test]
    fn kv_store_preloads_at_version_zero() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let keys: Vec<u64> = (1..=50).collect();
        let kv = build_kv_store(&mut m, base, 8, &keys, 32, 16);
        assert!(kv.table.overflow_entries > 0, "8×2 slots force chains");
        for &key in &keys {
            let (version, ptr) = kv.lookup(&mut m, key).expect("preloaded");
            assert_eq!(version, 0);
            assert_eq!(m.read(ptr, 32), versioned_value_pattern(key, 0, 32));
        }
        assert_eq!(kv.lookup(&mut m, 999), None, "absent key");
    }

    #[test]
    fn kv_store_region_plan_has_headroom() {
        let (mut m, base) = mem_with_region(HUGE_PAGE_SIZE);
        let keys: Vec<u64> = (1..=10).collect();
        let kv = build_kv_store(&mut m, base, 16, &keys, 64, 6);
        assert!(kv.entry_arena_next <= kv.entry_arena_end);
        assert!(kv.value_arena_next < kv.value_arena_end);
        assert_eq!(
            kv.value_arena_end - base,
            KvStore::region_len(16, 16, 64),
            "region plan must match the static size helper"
        );
        // Preload consumed exactly keys.len() value slots.
        assert_eq!(
            kv.value_arena_end - kv.value_arena_next,
            6 * 64,
            "spare value slots remain for on-NIC inserts"
        );
    }

    #[test]
    fn versioned_pattern_distinguishes_versions() {
        assert_eq!(
            versioned_value_pattern(9, 0, 24),
            value_pattern(9, 24),
            "version 0 is the preload pattern"
        );
        assert_ne!(versioned_value_pattern(9, 1, 24), value_pattern(9, 24));
        assert_ne!(
            versioned_value_pattern(9, 1, 24),
            versioned_value_pattern(9, 2, 24)
        );
    }

    #[test]
    fn value_pattern_is_key_dependent() {
        assert_ne!(value_pattern(1, 32), value_pattern(2, 32));
        assert_eq!(value_pattern(7, 16).len(), 16);
    }
}
