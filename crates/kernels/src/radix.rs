//! The radix hash of the shuffle kernel.
//!
//! §6.4: "The kernel treats the payload as 8 B values and partitions them
//! using a radix hash function that simply takes the N least significant
//! bits of the value as its hash value." The same function is used by the
//! CPU baseline (Barthels et al. \[6\]) — "the use of an inexpensive hash
//! function benefits the CPU", as the paper notes.

/// Maximum number of partitions the shuffle kernel buffers on chip (§6.4).
pub const MAX_PARTITIONS: usize = 1024;

/// Values buffered per partition before flushing (16 × 8 B = 128 B, §6.4).
pub const PARTITION_BUFFER_VALUES: usize = 16;

/// Radix partition: the `bits` least significant bits of the value.
///
/// # Examples
///
/// ```
/// use strom_kernels::radix::{radix_bits, radix_partition};
/// let bits = radix_bits(256);
/// assert_eq!(bits, 8);
/// assert_eq!(radix_partition(0x1234, bits), 0x34);
/// ```
#[inline]
pub fn radix_partition(value: u64, bits: u32) -> usize {
    debug_assert!(bits <= 10, "at most 1024 partitions");
    (value & ((1u64 << bits) - 1)) as usize
}

/// Number of radix bits for `num_partitions` (must be a power of two).
///
/// # Panics
///
/// Panics if `num_partitions` is zero, not a power of two, or exceeds
/// [`MAX_PARTITIONS`].
pub fn radix_bits(num_partitions: usize) -> u32 {
    assert!(num_partitions > 0, "need at least one partition");
    assert!(
        num_partitions.is_power_of_two(),
        "partition count must be a power of two"
    );
    assert!(
        num_partitions <= MAX_PARTITIONS,
        "at most {MAX_PARTITIONS} partitions fit on chip"
    );
    num_partitions.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_lsb_mask() {
        assert_eq!(radix_partition(0b1011_0110, 4), 0b0110);
        assert_eq!(radix_partition(0xffff_ffff_ffff_ffff, 10), 1023);
        assert_eq!(radix_partition(42, 0), 0);
    }

    #[test]
    fn bits_for_power_of_two_counts() {
        assert_eq!(radix_bits(1), 0);
        assert_eq!(radix_bits(2), 1);
        assert_eq!(radix_bits(256), 8);
        assert_eq!(radix_bits(1024), 10);
    }

    #[test]
    fn uniform_values_spread_uniformly() {
        let bits = 8;
        let mut counts = [0usize; 256];
        for v in 0..65_536u64 {
            counts[radix_partition(v, bits)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 256));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = radix_bits(100);
    }

    #[test]
    #[should_panic(expected = "on chip")]
    fn too_many_partitions_panics() {
        let _ = radix_bits(2048);
    }
}
