//! The radix hash of the shuffle kernel.
//!
//! §6.4: "The kernel treats the payload as 8 B values and partitions them
//! using a radix hash function that simply takes the N least significant
//! bits of the value as its hash value." The same function is used by the
//! CPU baseline (Barthels et al. \[6\]) — "the use of an inexpensive hash
//! function benefits the CPU", as the paper notes.

/// Maximum number of partitions the shuffle kernel buffers on chip (§6.4).
pub const MAX_PARTITIONS: usize = 1024;

/// Values buffered per partition before flushing (16 × 8 B = 128 B, §6.4).
pub const PARTITION_BUFFER_VALUES: usize = 16;

/// Radix partition: the `bits` least significant bits of the value.
///
/// # Examples
///
/// ```
/// use strom_kernels::radix::{radix_bits, radix_partition};
/// let bits = radix_bits(256);
/// assert_eq!(bits, 8);
/// assert_eq!(radix_partition(0x1234, bits), 0x34);
/// ```
#[inline]
pub fn radix_partition(value: u64, bits: u32) -> usize {
    debug_assert!(bits <= 10, "at most 1024 partitions");
    (value & ((1u64 << bits) - 1)) as usize
}

use crate::simd::U64x4;
use crate::simd_dispatch;

simd_dispatch! {
    /// Partition ids for a block of values, four lanes per step — the
    /// shuffle kernel computes ids for a whole burst before the (serial)
    /// buffer appends. Bit-identical to a [`radix_partition`] loop
    /// ([`radix_partition_batch_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn radix_partition_batch(values: &[u64], bits: u32, out: &mut [u32]) {
        assert_eq!(values.len(), out.len(), "in/out length mismatch");
        let mask = U64x4::splat((1u64 << bits) - 1);
        let mut i = 0;
        while i + 4 <= values.len() {
            let p = U64x4::load(&values[i..]).and(mask).to_array();
            for j in 0..4 {
                out[i + j] = p[j] as u32;
            }
            i += 4;
        }
        for j in i..values.len() {
            out[j] = radix_partition(values[j], bits) as u32;
        }
    }
}

/// Scalar-loop reference for [`radix_partition_batch`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn radix_partition_batch_reference(values: &[u64], bits: u32, out: &mut [u32]) {
    assert_eq!(values.len(), out.len(), "in/out length mismatch");
    for (o, &v) in out.iter_mut().zip(values) {
        *o = radix_partition(v, bits) as u32;
    }
}

simd_dispatch! {
    /// Histogram of partition occupancy: `counts[pid] += 1` for every
    /// value. Four interleaved sub-histograms break the store-to-load
    /// dependency of the naive loop ([`radix_histogram_reference`]);
    /// results are identical because addition commutes.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than `1 << bits`.
    pub fn radix_histogram(values: &[u64], bits: u32, counts: &mut [u64]) {
        let parts = 1usize << bits;
        assert!(counts.len() >= parts, "counts must cover 1 << bits partitions");
        let mut sub = vec![0u64; 4 * parts];
        let (s0, rest) = sub.split_at_mut(parts);
        let (s1, rest) = rest.split_at_mut(parts);
        let (s2, s3) = rest.split_at_mut(parts);
        let mask = U64x4::splat((1u64 << bits) - 1);
        let mut i = 0;
        while i + 4 <= values.len() {
            let p = U64x4::load(&values[i..]).and(mask).to_array();
            s0[p[0] as usize] += 1;
            s1[p[1] as usize] += 1;
            s2[p[2] as usize] += 1;
            s3[p[3] as usize] += 1;
            i += 4;
        }
        for &v in &values[i..] {
            s0[radix_partition(v, bits)] += 1;
        }
        for pid in 0..parts {
            counts[pid] += s0[pid] + s1[pid] + s2[pid] + s3[pid];
        }
    }
}

/// Naive one-counter-array reference for [`radix_histogram`].
///
/// # Panics
///
/// Panics if `counts` is shorter than `1 << bits`.
pub fn radix_histogram_reference(values: &[u64], bits: u32, counts: &mut [u64]) {
    assert!(
        counts.len() >= (1usize << bits),
        "counts must cover 1 << bits partitions"
    );
    for &v in values {
        counts[radix_partition(v, bits)] += 1;
    }
}

/// Number of radix bits for `num_partitions` (must be a power of two).
///
/// # Panics
///
/// Panics if `num_partitions` is zero, not a power of two, or exceeds
/// [`MAX_PARTITIONS`].
pub fn radix_bits(num_partitions: usize) -> u32 {
    assert!(num_partitions > 0, "need at least one partition");
    assert!(
        num_partitions.is_power_of_two(),
        "partition count must be a power of two"
    );
    assert!(
        num_partitions <= MAX_PARTITIONS,
        "at most {MAX_PARTITIONS} partitions fit on chip"
    );
    num_partitions.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_lsb_mask() {
        assert_eq!(radix_partition(0b1011_0110, 4), 0b0110);
        assert_eq!(radix_partition(0xffff_ffff_ffff_ffff, 10), 1023);
        assert_eq!(radix_partition(42, 0), 0);
    }

    #[test]
    fn bits_for_power_of_two_counts() {
        assert_eq!(radix_bits(1), 0);
        assert_eq!(radix_bits(2), 1);
        assert_eq!(radix_bits(256), 8);
        assert_eq!(radix_bits(1024), 10);
    }

    #[test]
    fn uniform_values_spread_uniformly() {
        let bits = 8;
        let mut counts = [0usize; 256];
        for v in 0..65_536u64 {
            counts[radix_partition(v, bits)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 256));
    }

    #[test]
    fn batch_ids_match_scalar_at_every_width() {
        let values: Vec<u64> = (0..29u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89ab))
            .collect();
        for len in 0..=values.len() {
            for bits in [0u32, 1, 4, 10] {
                let mut fast = vec![0u32; len];
                let mut slow = vec![0u32; len];
                radix_partition_batch(&values[..len], bits, &mut fast);
                radix_partition_batch_reference(&values[..len], bits, &mut slow);
                assert_eq!(fast, slow, "len = {len}, bits = {bits}");
            }
        }
    }

    #[test]
    fn histogram_matches_reference() {
        let values: Vec<u64> = (0..1003u64)
            .map(|i| i.wrapping_mul(0x5851_F42D_4C95_7F2D))
            .collect();
        for bits in [0u32, 3, 8, 10] {
            let mut fast = vec![0u64; 1 << bits];
            let mut slow = vec![0u64; 1 << bits];
            radix_histogram(&values, bits, &mut fast);
            radix_histogram_reference(&values, bits, &mut slow);
            assert_eq!(fast, slow, "bits = {bits}");
            assert_eq!(fast.iter().sum::<u64>(), values.len() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = radix_bits(100);
    }

    #[test]
    #[should_panic(expected = "on chip")]
    fn too_many_partitions_panics() {
        let _ = radix_bits(2048);
    }
}
