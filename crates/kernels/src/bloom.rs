//! A Bloom-filter semi-join kernel: membership push-down on RDMA streams.
//!
//! The distributed-join pattern the paper's shuffle kernel (§6.4) serves
//! has a classic companion: ship a Bloom filter of the build side to the
//! probe side and discard non-matching tuples *before* they cross the
//! network — a semi-join reduction. On StRoM the filter lives in host
//! memory, the kernel DMA-reads it at configure time (the same
//! pointer-parameter pattern as the shuffle histogram), and then drops
//! non-member tuples from the stream at line rate.
//!
//! The hot loop is vectorized: tuple hashes are computed four lanes at a
//! time ([`crate::hash::mix64_batch`]); the bitmap probes stay scalar
//! (they are data-dependent gathers), exactly like the HLL register
//! scatter. Differential-tested against [`BloomFilter::contains`] one
//! tuple at a time.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::hash::{mix64, mix64_batch};

/// Second-hash tweak for double hashing (an arbitrary odd constant).
const H2_TWEAK: u64 = 0x9E37_79B9_7F4A_7C15;

/// A plain Bloom filter over `u64` values: `2^log2_bits` bits, `k`
/// double-hashed probes per value.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    log2_bits: u8,
    probes: u8,
    words: Vec<u64>,
}

impl BloomFilter {
    /// Creates an empty filter with `2^log2_bits` bits and `probes`
    /// probes per value.
    ///
    /// # Panics
    ///
    /// Panics if `log2_bits` is outside `6..=32` or `probes` is 0.
    pub fn new(log2_bits: u8, probes: u8) -> Self {
        assert!((6..=32).contains(&log2_bits), "log2_bits must be in 6..=32");
        assert!(probes > 0, "at least one probe");
        Self {
            log2_bits,
            probes,
            words: vec![0; 1usize << (log2_bits - 6)],
        }
    }

    /// Rebuilds a filter from its serialized bitmap (the kernel's
    /// configure-time DMA read).
    ///
    /// # Panics
    ///
    /// Same domain checks as [`Self::new`]; also panics if `bitmap` is not
    /// exactly `2^log2_bits / 8` bytes.
    pub fn from_bitmap(log2_bits: u8, probes: u8, bitmap: &[u8]) -> Self {
        let mut f = Self::new(log2_bits, probes);
        assert_eq!(bitmap.len(), f.words.len() * 8, "bitmap size mismatch");
        for (w, c) in f.words.iter_mut().zip(bitmap.chunks_exact(8)) {
            *w = u64::from_le_bytes(c.try_into().expect("sized"));
        }
        f
    }

    /// The serialized bitmap (little-endian words).
    pub fn to_bitmap(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// The two double-hashing streams for a value.
    #[inline]
    fn hashes(value: u64) -> (u64, u64) {
        let h1 = mix64(value);
        (h1, mix64(h1 ^ H2_TWEAK) | 1)
    }

    #[inline]
    fn bit(&self, h1: u64, h2: u64, i: u64) -> (usize, u64) {
        let idx = h1.wrapping_add(i.wrapping_mul(h2)) & ((1u64 << self.log2_bits) - 1);
        ((idx >> 6) as usize, 1u64 << (idx & 63))
    }

    /// Inserts a value.
    pub fn insert(&mut self, value: u64) {
        let (h1, h2) = Self::hashes(value);
        for i in 0..u64::from(self.probes) {
            let (word, mask) = self.bit(h1, h2, i);
            self.words[word] |= mask;
        }
    }

    /// Membership probe given precomputed `h1` (the batch path shares the
    /// vectorized first hash).
    #[inline]
    fn contains_h1(&self, h1: u64) -> bool {
        let h2 = mix64(h1 ^ H2_TWEAK) | 1;
        (0..u64::from(self.probes)).all(|i| {
            let (word, mask) = self.bit(h1, h2, i);
            self.words[word] & mask != 0
        })
    }

    /// Membership probe: no false negatives, tunable false positives.
    pub fn contains(&self, value: u64) -> bool {
        self.contains_h1(mix64(value))
    }

    /// Block membership probe: bit i of the result is set iff
    /// `values[i]` may be a member. First hash is vectorized
    /// ([`mix64_batch`]); probes are scalar gathers. Reference:
    /// [`Self::contains_mask_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more than 64 elements.
    pub fn contains_mask(&self, values: &[u64]) -> u64 {
        assert!(values.len() <= 64, "one mask word covers 64 values");
        let mut h1 = [0u64; 64];
        mix64_batch(values, &mut h1[..values.len()]);
        let mut m = 0u64;
        for (i, &h) in h1[..values.len()].iter().enumerate() {
            m |= u64::from(self.contains_h1(h)) << i;
        }
        m
    }

    /// One-value-at-a-time reference for [`Self::contains_mask`].
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more than 64 elements.
    pub fn contains_mask_reference(&self, values: &[u64]) -> u64 {
        assert!(values.len() <= 64, "one mask word covers 64 values");
        let mut m = 0u64;
        for (i, &v) in values.iter().enumerate() {
            m |= u64::from(self.contains(v)) << i;
        }
        m
    }
}

/// Parameters of the Bloom semi-join kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomParams {
    /// Host-memory address of the serialized bitmap.
    pub bitmap_addr: u64,
    /// Host-memory base of the result region qualifying tuples append to.
    pub dest_addr: u64,
    /// Capacity of the result region in bytes.
    pub dest_capacity: u32,
    /// `log2` of the bitmap size in bits (6 ..= 32).
    pub log2_bits: u8,
    /// Probes per value.
    pub probes: u8,
    /// Requester-side address the 16 B summary is written to.
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const BLOOM_PARAMS_LEN: usize = 32;

impl BloomParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(BLOOM_PARAMS_LEN);
        out.extend_from_slice(&self.bitmap_addr.to_le_bytes());
        out.extend_from_slice(&self.dest_addr.to_le_bytes());
        out.extend_from_slice(&self.dest_capacity.to_le_bytes());
        out.push(self.log2_bits);
        out.push(self.probes);
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<BloomParams> {
        if buf.len() < BLOOM_PARAMS_LEN {
            return None;
        }
        let log2_bits = buf[20];
        let probes = buf[21];
        if !(6..=32).contains(&log2_bits) || probes == 0 {
            return None;
        }
        Some(BloomParams {
            bitmap_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            dest_addr: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
            dest_capacity: u32::from_le_bytes(buf[16..20].try_into().expect("sized")),
            log2_bits,
            probes,
            target_address: u64::from_le_bytes(buf[24..32].try_into().expect("sized")),
        })
    }
}

/// DMA tag for the bitmap read.
const TAG_BITMAP: u32 = 1;

/// Flush granularity, matching the filter/shuffle kernels.
const FLUSH_BYTES: usize = 128;

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    LoadingBitmap,
    Active {
        filter: BloomFilter,
    },
}

/// The Bloom semi-join kernel FSM.
#[derive(Debug, Default)]
pub struct BloomKernel {
    state: State,
    qpn: Qpn,
    params: Option<BloomParams>,
    /// Staged qualifying tuples awaiting a flush.
    staged: Vec<u8>,
    /// Next host address to flush to.
    cursor: u64,
    /// Remaining capacity of the result region.
    remaining: u32,
    /// Partial tuple spilled across packet boundaries.
    spill: Vec<u8>,
    /// Tuples observed in the current invocation.
    seen: u64,
    /// Tuples that passed the membership probe.
    kept: u64,
    /// Tuples dropped because the result region filled up.
    overflowed: u64,
}

impl BloomKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tuples dropped because the destination region was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// `(seen, kept)` counters (Controller status view).
    pub fn counters(&self) -> (u64, u64) {
        (self.seen, self.kept)
    }

    fn flush(&mut self, out: &mut Vec<KernelAction>) {
        if self.staged.is_empty() {
            return;
        }
        out.push(KernelAction::DmaWrite {
            vaddr: self.cursor,
            data: Bytes::from(std::mem::take(&mut self.staged)),
        });
    }

    fn ingest(&mut self, data: &[u8], out: &mut Vec<KernelAction>) {
        // Take the filter out for the duration of the scan so the staging
        // state can be mutated alongside it.
        let filter = match std::mem::take(&mut self.state) {
            State::Active { filter } => filter,
            other => {
                self.state = other;
                return;
            }
        };
        let mut input: &[u8] = data;
        let joined;
        if !self.spill.is_empty() {
            let mut j = std::mem::take(&mut self.spill);
            j.extend_from_slice(data);
            joined = j;
            input = &joined;
        }
        let whole = input.len() / 8 * 8;
        let mut block = [0u64; 64];
        for run in input[..whole].chunks(64 * 8) {
            let n = run.len() / 8;
            for (slot, chunk) in block[..n].iter_mut().zip(run.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("sized"));
            }
            self.seen += n as u64;
            let mut mask = filter.contains_mask(&block[..n]);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if (self.staged.len() + 8) as u32 > self.remaining {
                    self.overflowed += 1;
                    continue;
                }
                self.staged.extend_from_slice(&block[i].to_le_bytes());
                self.kept += 1;
                if self.staged.len() >= FLUSH_BYTES {
                    let len = self.staged.len() as u64;
                    self.flush(out);
                    self.cursor += len;
                    self.remaining -= len as u32;
                }
            }
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
        self.state = State::Active { filter };
    }
}

impl Kernel for BloomKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::BLOOM
    }

    fn name(&self) -> &'static str {
        "bloom"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = BloomParams::decode(&params) else {
                    return Vec::new();
                };
                self.qpn = qpn;
                self.cursor = p.dest_addr;
                self.remaining = p.dest_capacity;
                self.staged.clear();
                self.spill.clear();
                self.seen = 0;
                self.kept = 0;
                self.state = State::LoadingBitmap;
                let len = (1u64 << p.log2_bits) / 8;
                let vaddr = p.bitmap_addr;
                self.params = Some(p);
                vec![KernelAction::DmaRead {
                    tag: TAG_BITMAP,
                    vaddr,
                    len: len as u32,
                }]
            }
            KernelEvent::DmaData {
                tag: TAG_BITMAP,
                data,
            } => {
                let (State::LoadingBitmap, Some(p)) = (&self.state, &self.params) else {
                    return Vec::new();
                };
                self.state = State::Active {
                    filter: BloomFilter::from_bitmap(p.log2_bits, p.probes, &data),
                };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                if self.params.is_none() {
                    return Vec::new();
                }
                let mut out = Vec::new();
                self.ingest(&data, &mut out);
                if last {
                    let len = self.staged.len() as u64;
                    self.flush(&mut out);
                    self.cursor += len;
                    self.remaining = self.remaining.saturating_sub(len as u32);
                    let p = self.params.as_ref().expect("configured");
                    out.push(KernelAction::RoceSend {
                        qpn: self.qpn,
                        remote_vaddr: p.target_address,
                        data: Bytes::copy_from_slice(&crate::filter::FilterKernel::encode_summary(
                            self.seen, self.kept,
                        )),
                    });
                    out.push(KernelAction::Done);
                }
                out
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_filter(members: &[u64]) -> BloomFilter {
        let mut f = BloomFilter::new(16, 4);
        for &m in members {
            f.insert(m);
        }
        f
    }

    #[test]
    fn no_false_negatives() {
        let members: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(7919)).collect();
        let f = build_filter(&members);
        for &m in &members {
            assert!(f.contains(m), "member {m} must be found");
        }
    }

    #[test]
    fn false_positive_rate_is_plausible() {
        let members: Vec<u64> = (0..1000u64).collect();
        let f = build_filter(&members);
        let fp = (1_000_000..1_100_000u64).filter(|&v| f.contains(v)).count();
        // 2^16 bits / 1000 members, 4 probes → well under 1 % expected.
        assert!(fp < 1000, "false positives = {fp} / 100000");
    }

    #[test]
    fn bitmap_round_trips() {
        let members: Vec<u64> = (0..500u64).map(|i| i * 3 + 1).collect();
        let f = build_filter(&members);
        let g = BloomFilter::from_bitmap(16, 4, &f.to_bitmap());
        for v in 0..5000u64 {
            assert_eq!(f.contains(v), g.contains(v), "value {v}");
        }
    }

    #[test]
    fn contains_mask_matches_reference_at_every_width() {
        let f = build_filter(&(0..300u64).map(|i| i * 7).collect::<Vec<_>>());
        let probe: Vec<u64> = (0..64u64).map(|i| i * 7 + (i % 3)).collect();
        for len in 0..=64usize {
            assert_eq!(
                f.contains_mask(&probe[..len]),
                f.contains_mask_reference(&probe[..len]),
                "len = {len}"
            );
        }
    }

    #[test]
    fn params_round_trip() {
        let p = BloomParams {
            bitmap_addr: 1,
            dest_addr: 2,
            dest_capacity: 3,
            log2_bits: 16,
            probes: 4,
            target_address: 5,
        };
        assert_eq!(BloomParams::decode(&p.encode()), Some(p));
        assert!(BloomParams::decode(&[0u8; 8]).is_none());
        let bad = BloomParams { log2_bits: 40, ..p };
        assert!(BloomParams::decode(&bad.encode()).is_none());
    }

    #[test]
    fn kernel_drops_non_members() {
        let members: Vec<u64> = vec![10, 20, 30, 40];
        let f = build_filter(&members);
        let mut k = BloomKernel::new();
        let p = BloomParams {
            bitmap_addr: 0x100,
            dest_addr: 0x1000,
            dest_capacity: 1 << 20,
            log2_bits: 16,
            probes: 4,
            target_address: 0x9000,
        };
        let a = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: p.encode(),
        });
        assert_eq!(
            a,
            vec![KernelAction::DmaRead {
                tag: TAG_BITMAP,
                vaddr: 0x100,
                len: (1 << 16) / 8,
            }]
        );
        let a = k.on_event(KernelEvent::DmaData {
            tag: TAG_BITMAP,
            data: Bytes::from(f.to_bitmap()),
        });
        assert_eq!(a, vec![KernelAction::Done]);

        let stream: Vec<u64> = (0..50).collect();
        let data: Vec<u8> = stream.iter().flat_map(|v| v.to_le_bytes()).collect();
        let actions = k.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::from(data),
            last: true,
        });
        let written: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                KernelAction::DmaWrite { data, .. } => Some(
                    data.chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect();
        // No false negatives: every member of the stream survives. The
        // small universe makes false positives vanishingly unlikely but
        // membership is what we assert exactly.
        let expect: Vec<u64> = stream.iter().copied().filter(|v| f.contains(*v)).collect();
        assert_eq!(written, expect);
        for m in [10u64, 20, 30, 40] {
            assert!(written.contains(&m));
        }
        let (seen, kept) = k.counters();
        assert_eq!(seen, 50);
        assert_eq!(kept, written.len() as u64);
    }
}
