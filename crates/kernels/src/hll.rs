//! HyperLogLog cardinality estimation (Flajolet et al. \[15\]).
//!
//! §7.2 implements HLL as a StRoM kernel gathering cardinality "as a
//! by-product of data reception". This module is the algorithm itself,
//! shared by the NIC kernel ([`crate::hll_kernel`]) and the multi-threaded
//! CPU baseline. It uses `p`-bit register indexing (default p = 14,
//! 16,384 registers — the configuration of Heule et al. \[16\], which the
//! paper's CPU baseline is compared against) with the standard small-range
//! (linear counting) and large-range corrections.

use crate::hash::hash_item;

/// A HyperLogLog sketch.
///
/// # Examples
///
/// ```
/// use strom_kernels::hll::HyperLogLog;
/// let mut sketch = HyperLogLog::standard();
/// for i in 0..10_000u64 {
///     sketch.add_u64(i % 1000); // 1000 distinct values.
/// }
/// let estimate = sketch.estimate();
/// assert!((estimate - 1000.0).abs() / 1000.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    /// Number of index bits.
    p: u8,
    /// 2^p registers, each holding a max leading-zero rank.
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a sketch with `p` index bits (4 ..= 18).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `4..=18`.
    pub fn new(p: u8) -> Self {
        assert!((4..=18).contains(&p), "p must be in 4..=18");
        Self {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// The standard configuration used in the paper's context (p = 14).
    pub fn standard() -> Self {
        Self::new(14)
    }

    /// Number of registers (2^p).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// On-chip memory the register file needs, in bits — used by the
    /// resource model to size the kernel's BRAM footprint.
    pub fn state_bits(&self) -> usize {
        // 6 bits suffice per register for 64-bit hashes; the byte-packed
        // software representation is an implementation detail.
        self.registers.len() * 6
    }

    /// Adds an already-hashed value.
    #[inline]
    pub fn add_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.p)) as usize;
        // Rank = leading zeros of the remaining bits + 1, capped.
        let rest = hash << self.p;
        let rank = if rest == 0 {
            64 - self.p + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Adds an 8-byte item (hashing it first).
    #[inline]
    pub fn add_item(&mut self, item: [u8; 8]) {
        self.add_hash(hash_item(item));
    }

    /// Adds a `u64` value.
    #[inline]
    pub fn add_u64(&mut self, value: u64) {
        self.add_item(value.to_le_bytes());
    }

    /// Adds a block of `u64` values, hashing four lanes per step
    /// ([`crate::hash::mix64_batch`]); the register scatter stays scalar
    /// because lanes may collide on an index. Bit-identical to an
    /// [`Self::add_u64`] loop — the hash is the same finalizer and `max`
    /// is order-independent.
    pub fn add_u64_batch(&mut self, values: &[u64]) {
        let mut hashes = [0u64; 64];
        for block in values.chunks(64) {
            crate::hash::mix64_batch(block, &mut hashes[..block.len()]);
            for &h in &hashes[..block.len()] {
                self.add_hash(h);
            }
        }
    }

    /// Read-only register file — the differential tests compare this
    /// against a scalar-updated sketch for bit-identity.
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Merges another sketch of the same `p` into this one.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "cannot merge different precisions");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Estimates the cardinality.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        let two64 = 2f64.powi(64);
        if raw > two64 / 30.0 {
            // Large-range correction.
            return -two64 * (1.0 - raw / two64).ln();
        }
        raw
    }

    /// The analytic relative standard error: `1.04 / sqrt(m)`.
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(estimate: f64, truth: f64) -> f64 {
        (estimate - truth).abs() / truth
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = HyperLogLog::standard();
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut h = HyperLogLog::standard();
        for i in 0..100u64 {
            h.add_u64(i);
        }
        let e = h.estimate();
        assert!(relative_error(e, 100.0) < 0.05, "estimate = {e}");
    }

    #[test]
    fn duplicates_do_not_inflate_the_estimate() {
        let mut h = HyperLogLog::standard();
        for _ in 0..50 {
            for i in 0..1000u64 {
                h.add_u64(i);
            }
        }
        let e = h.estimate();
        assert!(relative_error(e, 1000.0) < 0.05, "estimate = {e}");
    }

    #[test]
    fn large_cardinality_within_error_bounds() {
        let mut h = HyperLogLog::standard();
        let n = 1_000_000u64;
        for i in 0..n {
            h.add_u64(i);
        }
        let e = h.estimate();
        // Allow 4 standard errors (p = 14 → ~0.8 %, so 3.3 %).
        let bound = 4.0 * h.standard_error();
        assert!(
            relative_error(e, n as f64) < bound,
            "estimate = {e}, bound = {bound}"
        );
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut ab = HyperLogLog::new(12);
        for i in 0..10_000u64 {
            a.add_u64(i);
            ab.add_u64(i);
        }
        for i in 5_000..15_000u64 {
            b.add_u64(i);
            ab.add_u64(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), ab.estimate(), "merge must equal union");
    }

    #[test]
    fn batch_updates_are_bit_identical_to_scalar() {
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        for len in [0usize, 1, 3, 63, 64, 65, 1000, 10_000] {
            let mut batched = HyperLogLog::new(12);
            let mut scalar = HyperLogLog::new(12);
            batched.add_u64_batch(&values[..len]);
            for &v in &values[..len] {
                scalar.add_u64(v);
            }
            assert_eq!(batched.registers(), scalar.registers(), "len = {len}");
        }
    }

    #[test]
    fn lower_precision_has_larger_error() {
        assert!(HyperLogLog::new(8).standard_error() > HyperLogLog::new(14).standard_error());
    }

    #[test]
    fn state_bits_match_register_count() {
        let h = HyperLogLog::standard();
        assert_eq!(h.num_registers(), 16_384);
        assert_eq!(h.state_bits(), 16_384 * 6);
    }

    #[test]
    #[should_panic(expected = "4..=18")]
    fn invalid_precision_panics() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    #[should_panic(expected = "precisions")]
    fn merging_mixed_precisions_panics() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }
}
