//! The HyperLogLog kernel: cardinality estimation as a by-product of data
//! reception (§7.2).
//!
//! "By implementing HLL as a StRoM kernel, we can gather this statistic as
//! a by-product of data reception, e.g., when data is received using RDMA
//! from a storage node by a compute node."
//!
//! The kernel is a **receive kernel** (§3.5's "Local StRoM Invocation"):
//! the NIC taps a copy of incoming WRITE payload into the kernel's
//! `roceDataIn` stream while the data continues to host memory unchanged —
//! a bump-in-the-wire with zero overhead, which is exactly the Fig 13b
//! result (Write+HLL tracks plain Write). The host retrieves the current
//! estimate either through Controller status registers or by invoking the
//! kernel's RPC, which writes the register snapshot summary back to the
//! requester.

use bytes::Bytes;

use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::hll::HyperLogLog;

/// The HLL kernel: a sketch updated from the receive data path.
#[derive(Debug)]
pub struct HllKernel {
    sketch: HyperLogLog,
    /// Partial 8 B item spilled across packet boundaries.
    spill: Vec<u8>,
    /// Total items observed.
    items: u64,
    /// Configured end-of-stream snapshot target (chain stages): when set,
    /// the snapshot is sent when the stream closes instead of at invoke.
    pending_summary: Option<(strom_wire::bth::Qpn, u64)>,
}

impl Default for HllKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl HllKernel {
    /// Creates a kernel with the standard p = 14 sketch.
    pub fn new() -> Self {
        Self::with_precision(14)
    }

    /// Creates a kernel with `p` index bits.
    pub fn with_precision(p: u8) -> Self {
        Self {
            sketch: HyperLogLog::new(p),
            spill: Vec::new(),
            items: 0,
            pending_summary: None,
        }
    }

    /// Encodes *streaming* parameters: configure the kernel to send its
    /// snapshot to `target_address` when the inbound stream closes — the
    /// mode a terminal HLL stage of a [`crate::framework::KernelChain`]
    /// uses. Distinguished from [`HllParams`] (an immediate snapshot
    /// query) by length and a flag word.
    pub fn stream_params(target_address: u64) -> Bytes {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&target_address.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes [`Self::stream_params`]; `None` for plain [`HllParams`].
    fn decode_stream_params(buf: &[u8]) -> Option<u64> {
        if buf.len() >= 16 && buf[8..16] == 1u64.to_le_bytes() {
            Some(u64::from_le_bytes(buf[0..8].try_into().expect("sized")))
        } else {
            None
        }
    }

    /// The current cardinality estimate (Controller status read).
    pub fn estimate(&self) -> f64 {
        self.sketch.estimate()
    }

    /// Total 8 B items observed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Read-only access to the sketch (for merging across nodes).
    pub fn sketch(&self) -> &HyperLogLog {
        &self.sketch
    }

    fn ingest(&mut self, data: &[u8]) {
        let mut input: &[u8] = data;
        let joined;
        if !self.spill.is_empty() {
            let mut j = std::mem::take(&mut self.spill);
            j.extend_from_slice(data);
            joined = j;
            input = &joined;
        }
        let whole = input.len() / 8 * 8;
        // Decode a block of tuples, then hash it four lanes at a time —
        // bit-identical to the per-item path (see hll differential tests).
        let mut block = [0u64; 64];
        for run in input[..whole].chunks(64 * 8) {
            let n = run.len() / 8;
            for (slot, chunk) in block[..n].iter_mut().zip(run.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("sized"));
            }
            self.sketch.add_u64_batch(&block[..n]);
            self.items += n as u64;
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
    }

    /// Encodes the estimate snapshot the RPC path returns: estimate as a
    /// `f64` bit pattern, then the item count.
    pub fn snapshot(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.estimate().to_bits().to_le_bytes());
        out[8..16].copy_from_slice(&self.items.to_le_bytes());
        out
    }

    /// Decodes a snapshot produced by [`Self::snapshot`].
    pub fn decode_snapshot(buf: &[u8]) -> Option<(f64, u64)> {
        if buf.len() < 16 {
            return None;
        }
        let est = f64::from_bits(u64::from_le_bytes(buf[0..8].try_into().expect("sized")));
        let items = u64::from_le_bytes(buf[8..16].try_into().expect("sized"));
        Some((est, items))
    }
}

/// RPC parameters: just the requester-side target address for the
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HllParams {
    /// Where the snapshot is written on the requester.
    pub target_address: u64,
}

impl HllParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.target_address.to_le_bytes())
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<HllParams> {
        if buf.len() < 8 {
            return None;
        }
        Some(HllParams {
            target_address: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
        })
    }
}

impl Kernel for HllKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::HLL
    }

    fn name(&self) -> &'static str {
        "hll"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            // Receive-path tap or RPC WRITE stream: update the sketch.
            KernelEvent::RoceData { data, last, .. } => {
                self.ingest(&data);
                if last {
                    let mut out = Vec::new();
                    if let Some((qpn, target)) = self.pending_summary.take() {
                        out.push(KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: target,
                            data: Bytes::copy_from_slice(&self.snapshot()),
                        });
                    }
                    out.push(KernelAction::Done);
                    out
                } else {
                    Vec::new()
                }
            }
            // RPC: configure an end-of-stream snapshot (chain stage) or
            // write the snapshot back to the requester immediately.
            KernelEvent::Invoke { qpn, params } => {
                if let Some(target) = Self::decode_stream_params(&params) {
                    self.pending_summary = Some((qpn, target));
                    return vec![KernelAction::Done];
                }
                let Some(p) = HllParams::decode(&params) else {
                    return Vec::new();
                };
                self.respond(qpn, p.target_address)
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }
}

impl HllKernel {
    fn respond(&self, qpn: strom_wire::bth::Qpn, target: u64) -> Vec<KernelAction> {
        vec![
            KernelAction::RoceSend {
                qpn,
                remote_vaddr: target,
                data: Bytes::copy_from_slice(&self.snapshot()),
            },
            KernelAction::Done,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(range: std::ops::Range<u64>) -> Vec<u8> {
        range.flat_map(|i| i.to_le_bytes()).collect()
    }

    #[test]
    fn estimates_distinct_items_in_stream() {
        let mut k = HllKernel::new();
        let data = items(0..50_000);
        for chunk in data.chunks(1440) {
            k.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(chunk),
                last: false,
            });
        }
        assert_eq!(k.items(), 50_000);
        let e = k.estimate();
        assert!((e - 50_000.0).abs() / 50_000.0 < 0.04, "estimate = {e}");
    }

    #[test]
    fn duplicates_across_packets_are_deduplicated() {
        let mut k = HllKernel::new();
        for _ in 0..10 {
            let data = items(0..1000);
            k.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::from(data),
                last: false,
            });
        }
        let e = k.estimate();
        assert!((e - 1000.0).abs() / 1000.0 < 0.05, "estimate = {e}");
        assert_eq!(k.items(), 10_000, "items counts arrivals, not distinct");
    }

    #[test]
    fn split_items_across_packet_boundaries() {
        let mut a = HllKernel::new();
        let mut b = HllKernel::new();
        let data = items(0..999);
        a.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::copy_from_slice(&data),
            last: true,
        });
        // Same data in 13-byte fragments.
        for chunk in data.chunks(13) {
            b.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(chunk),
                last: false,
            });
        }
        assert_eq!(a.items(), b.items());
        assert_eq!(a.estimate(), b.estimate(), "fragmentation must not matter");
    }

    #[test]
    fn rpc_returns_snapshot() {
        let mut k = HllKernel::new();
        k.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::from(items(0..5000)),
            last: true,
        });
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 3,
            params: HllParams {
                target_address: 0xbeef,
            }
            .encode(),
        });
        match &actions[0] {
            KernelAction::RoceSend {
                qpn,
                remote_vaddr,
                data,
            } => {
                assert_eq!((*qpn, *remote_vaddr), (3, 0xbeef));
                let (est, n) = HllKernel::decode_snapshot(data).unwrap();
                assert_eq!(n, 5000);
                assert!((est - 5000.0).abs() / 5000.0 < 0.05);
            }
            other => panic!("expected RoceSend, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let k = HllKernel::new();
        let (est, n) = HllKernel::decode_snapshot(&k.snapshot()).unwrap();
        assert_eq!(est, 0.0);
        assert_eq!(n, 0);
        assert!(HllKernel::decode_snapshot(&[0u8; 8]).is_none());
    }

    #[test]
    fn stream_params_snapshot_arrives_at_stream_end() {
        let mut k = HllKernel::new();
        let a = k.on_event(KernelEvent::Invoke {
            qpn: 2,
            params: HllKernel::stream_params(0x4000),
        });
        assert_eq!(a, vec![KernelAction::Done], "configuration completes");
        assert!(k
            .on_event(KernelEvent::RoceData {
                qpn: 2,
                data: Bytes::from(items(0..2000)),
                last: false,
            })
            .is_empty());
        let end = k.on_event(KernelEvent::RoceData {
            qpn: 2,
            data: Bytes::new(),
            last: true,
        });
        match &end[0] {
            KernelAction::RoceSend {
                qpn,
                remote_vaddr,
                data,
            } => {
                assert_eq!((*qpn, *remote_vaddr), (2, 0x4000));
                let (est, n) = HllKernel::decode_snapshot(data).unwrap();
                assert_eq!(n, 2000);
                assert!((est - 2000.0).abs() / 2000.0 < 0.05);
            }
            other => panic!("expected RoceSend, got {other:?}"),
        }
        assert_eq!(end[1], KernelAction::Done);
        // The summary is one-shot: a second stream end is just Done.
        assert_eq!(
            k.on_event(KernelEvent::RoceData {
                qpn: 2,
                data: Bytes::new(),
                last: true
            }),
            vec![KernelAction::Done]
        );
    }

    #[test]
    fn line_rate_contract() {
        // The kernel must declare II = 1 — the §3.4 condition for
        // bump-in-the-wire deployment at 100 G.
        assert_eq!(HllKernel::new().cycles_per_word(), 1);
    }
}
