//! The GET example kernel of Listing 2 (§5.2).
//!
//! The paper walks through this kernel to illustrate the programming
//! model: `fetch_ht_entry` reads the hash-table entry, `parse_ht_entry`
//! matches the key against the 3 buckets (unrolled in hardware) and
//! requests the value, with `merge_read_cmds` / `split_read_data` gluing
//! the DMA streams. "For simplicity, in this example we assume that there
//! is always exactly one matching key in the hash table entry" — the same
//! assumption holds here; the production-grade variant with misses and
//! chaining is the traversal kernel (§6.2).
//!
//! The event-driven structure below mirrors those four HLS functions: the
//! `Invoke` arm is `fetch_ht_entry`, the first `DmaData` arm is
//! `parse_ht_entry`, and the framework's tag routing plays the role of
//! `merge_read_cmds`/`split_read_data`.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_NOT_FOUND,
};
use crate::layouts::{ht_layout, ELEMENT_SIZE};

/// Parameters of the GET kernel (Listing 3's `getParams`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetParams {
    /// Address of the hash-table entry (the host computed the hash).
    pub entry_addr: u64,
    /// The lookup key.
    pub key: u64,
    /// Requester-side address the value is written to.
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const GET_PARAMS_LEN: usize = 24;

impl GetParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(GET_PARAMS_LEN);
        out.extend_from_slice(&self.entry_addr.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<GetParams> {
        if buf.len() < GET_PARAMS_LEN {
            return None;
        }
        Some(GetParams {
            entry_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            key: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
            target_address: u64::from_le_bytes(buf[16..24].try_into().expect("sized")),
        })
    }
}

/// DMA tag for the hash-table entry read (`htCmdFifo`).
const TAG_ENTRY: u32 = 1;
/// DMA tag for the value read (`valueCmdFifo`).
const TAG_VALUE: u32 = 2;

#[derive(Debug)]
enum State {
    Idle,
    /// Waiting for the entry (`htEntryFifo` in Listing 2).
    FetchingEntry {
        qpn: Qpn,
        params: GetParams,
    },
    /// Waiting for the value data.
    FetchingValue {
        qpn: Qpn,
        target_address: u64,
    },
}

/// The GET kernel FSM.
#[derive(Debug)]
pub struct GetKernel {
    state: State,
}

impl Default for GetKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl GetKernel {
    /// Creates an idle kernel.
    pub fn new() -> Self {
        Self { state: State::Idle }
    }
}

impl Kernel for GetKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::GET
    }

    fn name(&self) -> &'static str {
        "get"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            // fetch_ht_entry (Listing 3): consume qpnIn + paramIn, issue
            // the 64 B entry read.
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = GetParams::decode(&params) else {
                    return vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: 0,
                            data: Bytes::copy_from_slice(&error_word(ERR_BAD_PARAMS)),
                        },
                        KernelAction::Done,
                    ];
                };
                self.state = State::FetchingEntry { qpn, params: p };
                vec![KernelAction::DmaRead {
                    tag: TAG_ENTRY,
                    vaddr: p.entry_addr,
                    len: ELEMENT_SIZE as u32,
                }]
            }
            KernelEvent::DmaData { tag, data } => {
                match std::mem::replace(&mut self.state, State::Idle) {
                    // parse_ht_entry (Listing 4): match the key against
                    // the 3 buckets concurrently, emit the value command
                    // and the RoCE metadata.
                    State::FetchingEntry { qpn, params } if tag == TAG_ENTRY => {
                        let mut matched: Option<(u64, u32)> = None;
                        for pos in ht_layout::BUCKET_KEY_POS {
                            let off = usize::from(pos) * 4;
                            let key =
                                u64::from_le_bytes(data[off..off + 8].try_into().expect("sized"));
                            if key == params.key {
                                let ptr = u64::from_le_bytes(
                                    data[off + 8..off + 16].try_into().expect("sized"),
                                );
                                let len = u32::from_le_bytes(
                                    data[off + 16..off + 20].try_into().expect("sized"),
                                );
                                matched = Some((ptr, len));
                                break;
                            }
                        }
                        // The paper's simplifying assumption is that a
                        // match always exists; report cleanly if not.
                        let Some((value_ptr, value_len)) = matched else {
                            return vec![
                                KernelAction::RoceSend {
                                    qpn,
                                    remote_vaddr: params.target_address,
                                    data: Bytes::copy_from_slice(&error_word(ERR_NOT_FOUND)),
                                },
                                KernelAction::Done,
                            ];
                        };
                        self.state = State::FetchingValue {
                            qpn,
                            target_address: params.target_address,
                        };
                        vec![KernelAction::DmaRead {
                            tag: TAG_VALUE,
                            vaddr: value_ptr,
                            len: value_len,
                        }]
                    }
                    // split_read_data: the value flows out to the network.
                    State::FetchingValue {
                        qpn,
                        target_address,
                    } if tag == TAG_VALUE => vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: target_address,
                            data,
                        },
                        KernelAction::Done,
                    ],
                    other => {
                        self.state = other;
                        Vec::new()
                    }
                }
            }
            KernelEvent::RoceData { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::{build_hash_table, value_pattern};
    use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

    fn run(
        kernel: &mut GetKernel,
        mem: &mut HostMemory,
        params: GetParams,
    ) -> (Vec<KernelAction>, u32) {
        let mut reads = 0;
        let mut actions = kernel.on_event(KernelEvent::Invoke {
            qpn: 4,
            params: params.encode(),
        });
        while let Some(KernelAction::DmaRead { tag, vaddr, len }) = actions.first() {
            reads += 1;
            let data = Bytes::from(mem.read(*vaddr, *len as usize));
            actions = kernel.on_event(KernelEvent::DmaData { tag: *tag, data });
        }
        (actions, reads)
    }

    #[test]
    fn params_round_trip() {
        let p = GetParams {
            entry_addr: 1,
            key: 2,
            target_address: 3,
        };
        assert_eq!(GetParams::decode(&p.encode()), Some(p));
        assert!(GetParams::decode(&[0u8; 8]).is_none());
    }

    #[test]
    fn get_retrieves_the_value_in_two_reads() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let keys: Vec<u64> = (1..=20).collect();
        let ht = build_hash_table(&mut m, base, 64, &keys, 96);
        let mut k = GetKernel::new();
        for &key in &keys {
            let (actions, reads) = run(
                &mut k,
                &mut m,
                GetParams {
                    entry_addr: ht.entry_addr(key),
                    key,
                    target_address: 0x6000,
                },
            );
            assert_eq!(reads, 2, "Listing 2: entry + value");
            match &actions[0] {
                KernelAction::RoceSend {
                    qpn,
                    remote_vaddr,
                    data,
                } => {
                    assert_eq!((*qpn, *remote_vaddr), (4, 0x6000));
                    assert_eq!(&data[..], value_pattern(key, 96));
                }
                other => panic!("expected RoceSend, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_key_reports_not_found() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let ht = build_hash_table(&mut m, base, 16, &[1, 2, 3], 16);
        let mut k = GetKernel::new();
        let (actions, reads) = run(
            &mut k,
            &mut m,
            GetParams {
                entry_addr: ht.entry_addr(999),
                key: 999,
                target_address: 0,
            },
        );
        assert_eq!(reads, 1);
        assert!(matches!(&actions[0], KernelAction::RoceSend { data, .. }
            if crate::framework::decode_error(u64::from_le_bytes(data[..8].try_into().unwrap()))
                == Some(ERR_NOT_FOUND)));
    }

    #[test]
    fn malformed_params_error_out() {
        let mut k = GetKernel::new();
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: Bytes::from_static(b"xx"),
        });
        assert!(matches!(actions[0], KernelAction::RoceSend { .. }));
        assert_eq!(actions[1], KernelAction::Done);
    }
}
