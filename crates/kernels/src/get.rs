//! The GET kernel of Listing 2 (§5.2), grown past the paper's
//! simplifying assumption.
//!
//! The paper walks through this kernel to illustrate the programming
//! model: `fetch_ht_entry` reads the hash-table entry, `parse_ht_entry`
//! matches the key against the buckets (unrolled in hardware) and
//! requests the value, with `merge_read_cmds` / `split_read_data` gluing
//! the DMA streams. "For simplicity, in this example we assume that there
//! is always exactly one matching key in the hash table entry" — this
//! implementation drops that assumption:
//!
//! - a true miss answers with `ERR_NOT_FOUND` instead of hanging;
//! - with [`GetParams::chained`] set, the kernel serves the
//!   [`crate::layouts::chained_layout`] KV entries (2 buckets + overflow
//!   chain), following next-entry pointers on a bucket miss — §6.2's
//!   "fetch the next hash table entry in case the implementation uses
//!   chaining" — and prefixing the response with the matched bucket's
//!   8 B version counter so the serving tier can verify reads against
//!   concurrent PUTs.
//!
//! Chained response layout at `target_address`: the value lands at
//! `target + 8` first and the version header at `target` last, so a
//! host watching the header observes a fully-landed response (RC
//! delivery is in-order). A miss writes only the 8 B error header.
//!
//! The event-driven structure mirrors the paper's four HLS functions: the
//! `Invoke` arm is `fetch_ht_entry`, the first `DmaData` arm is
//! `parse_ht_entry`, and the framework's tag routing plays the role of
//! `merge_read_cmds`/`split_read_data`.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_NOT_FOUND,
};
use crate::layouts::{chained_layout, ht_layout, ELEMENT_SIZE};

/// Parameters of the GET kernel (Listing 3's `getParams`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetParams {
    /// Address of the hash-table entry (the host computed the hash).
    pub entry_addr: u64,
    /// The lookup key.
    pub key: u64,
    /// Requester-side address the value is written to.
    pub target_address: u64,
    /// Chained-layout mode: 2-bucket entries with overflow chains and a
    /// version-prefixed response (the KV serving tier). `false` keeps
    /// the paper's 3-bucket Pilaf entry and the bare-value response.
    pub chained: bool,
}

/// Encoded parameter length in bytes (3 fields + a flags byte).
pub const GET_PARAMS_LEN: usize = 25;

/// Flag bit: serve the chained layout.
const FLAG_CHAINED: u8 = 1;

impl GetParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(GET_PARAMS_LEN);
        out.extend_from_slice(&self.entry_addr.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.target_address.to_le_bytes());
        out.push(if self.chained { FLAG_CHAINED } else { 0 });
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload. A 24-byte blob (the original
    /// flag-less encoding) decodes as non-chained.
    pub fn decode(buf: &[u8]) -> Option<GetParams> {
        if buf.len() < 24 {
            return None;
        }
        let flags = if buf.len() >= GET_PARAMS_LEN {
            buf[24]
        } else {
            0
        };
        Some(GetParams {
            entry_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            key: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
            target_address: u64::from_le_bytes(buf[16..24].try_into().expect("sized")),
            chained: flags & FLAG_CHAINED != 0,
        })
    }
}

/// DMA tag for the hash-table entry read (`htCmdFifo`).
const TAG_ENTRY: u32 = 1;
/// DMA tag for the value read (`valueCmdFifo`).
const TAG_VALUE: u32 = 2;

/// Chain-walk bound: a cycle in a corrupted table must not wedge the
/// kernel (mirrors the traversal kernel's hop cap).
const MAX_HOPS: u32 = 1024;

#[derive(Debug)]
enum State {
    Idle,
    /// Waiting for the entry (`htEntryFifo` in Listing 2).
    FetchingEntry {
        qpn: Qpn,
        params: GetParams,
        hops: u32,
    },
    /// Waiting for the value data.
    FetchingValue {
        qpn: Qpn,
        target_address: u64,
        /// Version header for the chained response (`None` in the
        /// paper's plain mode).
        version: Option<u64>,
    },
}

/// The GET kernel FSM.
#[derive(Debug)]
pub struct GetKernel {
    state: State,
}

impl Default for GetKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl GetKernel {
    /// Creates an idle kernel.
    pub fn new() -> Self {
        Self { state: State::Idle }
    }
}

/// The miss response: the 8 B error header at the target address.
fn miss(qpn: Qpn, target_address: u64) -> Vec<KernelAction> {
    vec![
        KernelAction::RoceSend {
            qpn,
            remote_vaddr: target_address,
            data: Bytes::copy_from_slice(&error_word(ERR_NOT_FOUND)),
        },
        KernelAction::Done,
    ]
}

impl Kernel for GetKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::GET
    }

    fn name(&self) -> &'static str {
        "get"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            // fetch_ht_entry (Listing 3): consume qpnIn + paramIn, issue
            // the 64 B entry read.
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = GetParams::decode(&params) else {
                    return vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: 0,
                            data: Bytes::copy_from_slice(&error_word(ERR_BAD_PARAMS)),
                        },
                        KernelAction::Done,
                    ];
                };
                let addr = p.entry_addr;
                self.state = State::FetchingEntry {
                    qpn,
                    params: p,
                    hops: 0,
                };
                vec![KernelAction::DmaRead {
                    tag: TAG_ENTRY,
                    vaddr: addr,
                    len: ELEMENT_SIZE as u32,
                }]
            }
            KernelEvent::DmaData { tag, data } => {
                match std::mem::replace(&mut self.state, State::Idle) {
                    // parse_ht_entry (Listing 4): match the key against
                    // the buckets concurrently, emit the value command
                    // and the RoCE metadata.
                    State::FetchingEntry { qpn, params, hops } if tag == TAG_ENTRY => {
                        let bucket_offs: Vec<usize> = if params.chained {
                            (0..chained_layout::BUCKETS)
                                .map(chained_layout::key_off)
                                .collect()
                        } else {
                            ht_layout::BUCKET_KEY_POS
                                .iter()
                                .map(|&p| usize::from(p) * 4)
                                .collect()
                        };
                        let mut matched: Option<(u64, u32, Option<u64>)> = None;
                        for (b, &off) in bucket_offs.iter().enumerate() {
                            let key =
                                u64::from_le_bytes(data[off..off + 8].try_into().expect("sized"));
                            if key != 0 && key == params.key {
                                let ptr = u64::from_le_bytes(
                                    data[off + 8..off + 16].try_into().expect("sized"),
                                );
                                let len = u32::from_le_bytes(
                                    data[off + 16..off + 20].try_into().expect("sized"),
                                );
                                let version = params.chained.then(|| {
                                    let voff = chained_layout::version_off(b);
                                    u64::from_le_bytes(
                                        data[voff..voff + 8].try_into().expect("sized"),
                                    )
                                });
                                matched = Some((ptr, len, version));
                                break;
                            }
                        }
                        let Some((value_ptr, value_len, version)) = matched else {
                            // No bucket matched. Chained mode follows the
                            // overflow chain before declaring a miss.
                            if params.chained {
                                let noff = chained_layout::next_off();
                                let next = u64::from_le_bytes(
                                    data[noff..noff + 8].try_into().expect("sized"),
                                );
                                if next != 0 && hops < MAX_HOPS {
                                    self.state = State::FetchingEntry {
                                        qpn,
                                        params,
                                        hops: hops + 1,
                                    };
                                    return vec![KernelAction::DmaRead {
                                        tag: TAG_ENTRY,
                                        vaddr: next,
                                        len: ELEMENT_SIZE as u32,
                                    }];
                                }
                            }
                            return miss(qpn, params.target_address);
                        };
                        self.state = State::FetchingValue {
                            qpn,
                            target_address: params.target_address,
                            version,
                        };
                        vec![KernelAction::DmaRead {
                            tag: TAG_VALUE,
                            vaddr: value_ptr,
                            len: value_len,
                        }]
                    }
                    // split_read_data: the value flows out to the network
                    // — chained mode sends value first, header last, so
                    // the in-order header write signals a complete
                    // response.
                    State::FetchingValue {
                        qpn,
                        target_address,
                        version,
                    } if tag == TAG_VALUE => match version {
                        Some(v) => vec![
                            KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target_address + 8,
                                data,
                            },
                            KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target_address,
                                data: Bytes::copy_from_slice(&v.to_le_bytes()),
                            },
                            KernelAction::Done,
                        ],
                        None => vec![
                            KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target_address,
                                data,
                            },
                            KernelAction::Done,
                        ],
                    },
                    other => {
                        self.state = other;
                        Vec::new()
                    }
                }
            }
            KernelEvent::RoceData { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::{
        build_hash_table, build_kv_store, value_pattern, versioned_value_pattern,
    };
    use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

    fn run(
        kernel: &mut GetKernel,
        mem: &mut HostMemory,
        params: GetParams,
    ) -> (Vec<KernelAction>, u32) {
        let mut reads = 0;
        let mut actions = kernel.on_event(KernelEvent::Invoke {
            qpn: 4,
            params: params.encode(),
        });
        while let Some(KernelAction::DmaRead { tag, vaddr, len }) = actions.first() {
            reads += 1;
            let data = Bytes::from(mem.read(*vaddr, *len as usize));
            actions = kernel.on_event(KernelEvent::DmaData { tag: *tag, data });
        }
        (actions, reads)
    }

    fn plain(entry_addr: u64, key: u64, target_address: u64) -> GetParams {
        GetParams {
            entry_addr,
            key,
            target_address,
            chained: false,
        }
    }

    #[test]
    fn params_round_trip() {
        for chained in [false, true] {
            let p = GetParams {
                entry_addr: 1,
                key: 2,
                target_address: 3,
                chained,
            };
            assert_eq!(GetParams::decode(&p.encode()), Some(p));
        }
        assert!(GetParams::decode(&[0u8; 8]).is_none());
        // The original 24-byte encoding still decodes (as non-chained).
        let legacy = GetParams::decode(&[0u8; 24]).unwrap();
        assert!(!legacy.chained);
    }

    #[test]
    fn get_retrieves_the_value_in_two_reads() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let keys: Vec<u64> = (1..=20).collect();
        let ht = build_hash_table(&mut m, base, 64, &keys, 96);
        let mut k = GetKernel::new();
        for &key in &keys {
            let (actions, reads) = run(&mut k, &mut m, plain(ht.entry_addr(key), key, 0x6000));
            assert_eq!(reads, 2, "Listing 2: entry + value");
            match &actions[0] {
                KernelAction::RoceSend {
                    qpn,
                    remote_vaddr,
                    data,
                } => {
                    assert_eq!((*qpn, *remote_vaddr), (4, 0x6000));
                    assert_eq!(&data[..], value_pattern(key, 96));
                }
                other => panic!("expected RoceSend, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_key_reports_not_found() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let ht = build_hash_table(&mut m, base, 16, &[1, 2, 3], 16);
        let mut k = GetKernel::new();
        let (actions, reads) = run(&mut k, &mut m, plain(ht.entry_addr(999), 999, 0));
        assert_eq!(reads, 1);
        assert!(matches!(&actions[0], KernelAction::RoceSend { data, .. }
            if crate::framework::decode_error(u64::from_le_bytes(data[..8].try_into().unwrap()))
                == Some(ERR_NOT_FOUND)));
    }

    #[test]
    fn malformed_params_error_out() {
        let mut k = GetKernel::new();
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: Bytes::from_static(b"xx"),
        });
        assert!(matches!(actions[0], KernelAction::RoceSend { .. }));
        assert_eq!(actions[1], KernelAction::Done);
    }

    /// Chained-mode helpers: run a lookup and decode the response.
    fn chained_get(m: &mut HostMemory, entry_addr: u64, key: u64) -> (Vec<KernelAction>, u32) {
        let mut k = GetKernel::new();
        run(
            &mut k,
            m,
            GetParams {
                entry_addr,
                key,
                target_address: 0x8000,
                chained: true,
            },
        )
    }

    #[test]
    fn chained_get_serves_collisions_and_chains() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        // 2 primary entries × 2 buckets for 12 keys: collisions in every
        // entry and guaranteed overflow chains.
        let keys: Vec<u64> = (1..=12).collect();
        let kv = build_kv_store(&mut m, base, 2, &keys, 48, 4);
        assert!(kv.table.overflow_entries > 0);
        for &key in &keys {
            let (actions, reads) = chained_get(&mut m, kv.entry_addr(key), key);
            assert!(
                reads >= 2,
                "entry + value at minimum; chained keys take more hops"
            );
            // Value first (target + 8), version header last (target).
            match (&actions[0], &actions[1]) {
                (
                    KernelAction::RoceSend {
                        remote_vaddr: va,
                        data: value,
                        ..
                    },
                    KernelAction::RoceSend {
                        remote_vaddr: ha,
                        data: header,
                        ..
                    },
                ) => {
                    assert_eq!((*va, *ha), (0x8008, 0x8000));
                    assert_eq!(&value[..], versioned_value_pattern(key, 0, 48));
                    let v = u64::from_le_bytes(header[..8].try_into().unwrap());
                    assert_eq!(v, 0, "preloaded keys are at version 0");
                }
                other => panic!("expected value+header sends, got {other:?}"),
            }
            assert_eq!(actions[2], KernelAction::Done);
        }
    }

    #[test]
    fn chained_entry_lookup_walks_the_overflow_chain() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        // A single primary entry: keys 3.. must live in overflow entries.
        let keys: Vec<u64> = (1..=7).collect();
        let kv = build_kv_store(&mut m, base, 1, &keys, 32, 0);
        // Deepest key needs ceil(7/2) = 4 entry hops + 1 value read.
        let deep = *keys.last().unwrap();
        let (_, reads) = chained_get(&mut m, kv.entry_addr(deep), deep);
        assert_eq!(reads, 4 + 1, "chain walk must hop entry by entry");
    }

    #[test]
    fn chained_true_miss_walks_to_the_end_and_reports_not_found() {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let keys: Vec<u64> = (1..=6).collect();
        let kv = build_kv_store(&mut m, base, 1, &keys, 32, 0);
        // Key 100 hashes to the same (only) entry but is absent: the
        // kernel must walk the whole chain, then answer ERR_NOT_FOUND.
        let (actions, reads) = chained_get(&mut m, kv.entry_addr(100), 100);
        assert_eq!(reads, 3, "all three chain entries visited");
        match &actions[0] {
            KernelAction::RoceSend {
                remote_vaddr, data, ..
            } => {
                assert_eq!(*remote_vaddr, 0x8000, "error lands at the header");
                let word = u64::from_le_bytes(data[..8].try_into().unwrap());
                assert_eq!(crate::framework::decode_error(word), Some(ERR_NOT_FOUND));
            }
            other => panic!("expected error send, got {other:?}"),
        }
    }
}
