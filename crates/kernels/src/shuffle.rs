//! The shuffle kernel: on-NIC radix partitioning of incoming RDMA streams.
//!
//! §6.4: "We implement a shuffling kernel that supports data shuffling on
//! the remote NIC. When data is transmitted, the kernel on the remote NIC
//! partitions the incoming data on-the-fly and writes the partitioned data
//! values to the corresponding location in its host memory. The kernel
//! treats the payload as 8 B values and partitions them using a radix hash
//! function … The kernel creates on-chip buffers for up to 1024
//! partitions, each of which accommodates up to 16 values (128 B). Such
//! buffering is required to keep up with line-rate processing throughput
//! over PCIe. The kernel is parametrized through an RDMA RPC message
//! containing a histogram indicating the size and memory location of each
//! partition."
//!
//! Because the histogram for 1024 partitions exceeds one MTU, the RPC
//! parameters carry a *pointer* to the histogram in host memory and the
//! kernel DMA-reads it — the natural pattern for kernels that keep partial
//! state in host memory (§2.3). Data then arrives via RDMA RPC WRITE and
//! is flushed in 128 B bursts.

use bytes::Bytes;

use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::radix::{
    radix_bits, radix_partition, radix_partition_batch, MAX_PARTITIONS, PARTITION_BUFFER_VALUES,
};

/// Parameters of the shuffle kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleParams {
    /// Host-memory address of the histogram: `num_partitions` records of
    /// 16 B each — base address (8 B), capacity in bytes (4 B), pad (4 B).
    pub histogram_addr: u64,
    /// Number of partitions (power of two, ≤ 1024).
    pub num_partitions: u32,
}

/// Encoded parameter length in bytes.
pub const SHUFFLE_PARAMS_LEN: usize = 12;

/// Bytes per histogram record.
pub const HISTOGRAM_RECORD: usize = 16;

impl ShuffleParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(SHUFFLE_PARAMS_LEN);
        out.extend_from_slice(&self.histogram_addr.to_le_bytes());
        out.extend_from_slice(&self.num_partitions.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<ShuffleParams> {
        if buf.len() < SHUFFLE_PARAMS_LEN {
            return None;
        }
        Some(ShuffleParams {
            histogram_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            num_partitions: u32::from_le_bytes(buf[8..12].try_into().expect("sized")),
        })
    }
}

/// Encodes a histogram (partition base + capacity) into host-memory bytes.
pub fn encode_histogram(partitions: &[(u64, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(partitions.len() * HISTOGRAM_RECORD);
    for &(base, capacity) in partitions {
        out.extend_from_slice(&base.to_le_bytes());
        out.extend_from_slice(&capacity.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
    }
    out
}

/// One partition's on-chip state.
#[derive(Debug, Clone)]
struct Partition {
    /// Next host address to flush to.
    cursor: u64,
    /// Remaining capacity in bytes.
    remaining: u32,
    /// The on-chip buffer (up to 16 values = 128 B).
    buffer: Vec<u8>,
}

/// DMA tag for the histogram read.
const TAG_HISTOGRAM: u32 = 1;

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    LoadingHistogram {
        num_partitions: u32,
    },
    /// Configured and partitioning incoming payload.
    Active,
}

/// The shuffle kernel FSM.
#[derive(Debug, Default)]
pub struct ShuffleKernel {
    state: State,
    partitions: Vec<Partition>,
    bits: u32,
    /// Value spill: a trailing partial 8 B value across packet boundaries.
    spill: Vec<u8>,
    /// Values dropped because their partition was full (diagnostics; the
    /// experiments size partitions so this stays zero).
    overflowed: u64,
    /// Total values partitioned.
    values: u64,
}

impl ShuffleKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Values dropped due to partition overflow.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Total values partitioned so far.
    pub fn values(&self) -> u64 {
        self.values
    }

    fn configure(&mut self, histogram: &[u8], num_partitions: u32) {
        self.partitions.clear();
        for i in 0..num_partitions as usize {
            let off = i * HISTOGRAM_RECORD;
            let base = u64::from_le_bytes(histogram[off..off + 8].try_into().expect("sized"));
            let capacity =
                u32::from_le_bytes(histogram[off + 8..off + 12].try_into().expect("sized"));
            self.partitions.push(Partition {
                cursor: base,
                remaining: capacity,
                buffer: Vec::with_capacity(PARTITION_BUFFER_VALUES * 8),
            });
        }
        self.bits = radix_bits(num_partitions as usize);
        self.spill.clear();
        self.state = State::Active;
    }

    fn flush_partition(p: &mut Partition, out: &mut Vec<KernelAction>) {
        if p.buffer.is_empty() {
            return;
        }
        let len = p.buffer.len().min(p.remaining as usize);
        if len > 0 {
            out.push(KernelAction::DmaWrite {
                vaddr: p.cursor,
                data: Bytes::from(p.buffer[..len].to_vec()),
            });
            p.cursor += len as u64;
            p.remaining -= len as u32;
        }
        p.buffer.clear();
    }

    fn partition_values(&mut self, data: &[u8], out: &mut Vec<KernelAction>) {
        // Reassemble 8 B values across packet boundaries.
        let mut input: &[u8] = data;
        let mut joined: Vec<u8>;
        if !self.spill.is_empty() {
            joined = std::mem::take(&mut self.spill);
            joined.extend_from_slice(data);
            input = &joined;
        } else {
            joined = Vec::new();
        }
        let whole = input.len() / 8 * 8;
        // Compute partition ids for a whole block with the vector radix
        // scan, then run the (serial) on-chip buffer appends — identical
        // order and results to the per-value loop.
        let mut block = [0u64; 64];
        let mut pids = [0u32; 64];
        for run in input[..whole].chunks(64 * 8) {
            let n = run.len() / 8;
            for (slot, chunk) in block[..n].iter_mut().zip(run.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("sized"));
            }
            radix_partition_batch(&block[..n], self.bits, &mut pids[..n]);
            for j in 0..n {
                let p = &mut self.partitions[pids[j] as usize];
                if (p.buffer.len() + 8) as u32 > p.remaining {
                    // No room left in this partition's host region.
                    self.overflowed += 1;
                    continue;
                }
                p.buffer.extend_from_slice(&block[j].to_le_bytes());
                self.values += 1;
                if p.buffer.len() >= PARTITION_BUFFER_VALUES * 8 {
                    Self::flush_partition(p, out);
                }
            }
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
        drop(joined);
    }

    /// Flushes all partial buffers (end of stream).
    fn flush_all(&mut self, out: &mut Vec<KernelAction>) {
        for p in &mut self.partitions {
            Self::flush_partition(p, out);
        }
    }
}

impl Kernel for ShuffleKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::SHUFFLE
    }

    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn: _, params } => {
                let Some(p) = ShuffleParams::decode(&params) else {
                    return Vec::new();
                };
                if p.num_partitions == 0
                    || !p.num_partitions.is_power_of_two()
                    || p.num_partitions as usize > MAX_PARTITIONS
                {
                    return Vec::new();
                }
                self.state = State::LoadingHistogram {
                    num_partitions: p.num_partitions,
                };
                vec![KernelAction::DmaRead {
                    tag: TAG_HISTOGRAM,
                    vaddr: p.histogram_addr,
                    len: p.num_partitions * HISTOGRAM_RECORD as u32,
                }]
            }
            KernelEvent::DmaData { tag, data } => {
                if tag != TAG_HISTOGRAM {
                    return Vec::new();
                }
                let State::LoadingHistogram { num_partitions } = self.state else {
                    return Vec::new();
                };
                if data.len() < num_partitions as usize * HISTOGRAM_RECORD {
                    return Vec::new();
                }
                self.configure(&data, num_partitions);
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { qpn: _, data, last } => {
                if !matches!(self.state, State::Active) {
                    return Vec::new();
                }
                let mut out = Vec::new();
                self.partition_values(&data, &mut out);
                if last {
                    self.flush_all(&mut out);
                    out.push(KernelAction::Done);
                }
                out
            }
        }
    }
}

/// A reference (oracle) partitioner: the same semantics in one pass, used
/// by the property tests and the CPU baseline verification.
pub fn reference_partition(values: &[u64], num_partitions: usize) -> Vec<Vec<u64>> {
    let bits = radix_bits(num_partitions);
    let mut out = vec![Vec::new(); num_partitions];
    for &v in values {
        out[radix_partition(v, bits)].push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the kernel with an in-test host memory image.
    struct Harness {
        kernel: ShuffleKernel,
        /// Flat host memory: addr → byte, tracked as writes.
        writes: Vec<(u64, Vec<u8>)>,
    }

    impl Harness {
        fn new(num_partitions: u32, capacity: u32) -> (Self, Vec<u64>) {
            let mut kernel = ShuffleKernel::new();
            // Partition i's region starts at i * 1 MB.
            let bases: Vec<u64> = (0..num_partitions as u64).map(|i| i << 20).collect();
            let histogram =
                encode_histogram(&bases.iter().map(|&b| (b, capacity)).collect::<Vec<_>>());
            let a1 = kernel.on_event(KernelEvent::Invoke {
                qpn: 1,
                params: ShuffleParams {
                    histogram_addr: 0x5000,
                    num_partitions,
                }
                .encode(),
            });
            assert!(matches!(a1[0], KernelAction::DmaRead { len, .. }
                if len == num_partitions * HISTOGRAM_RECORD as u32));
            let a2 = kernel.on_event(KernelEvent::DmaData {
                tag: TAG_HISTOGRAM,
                data: Bytes::from(histogram),
            });
            assert_eq!(a2, vec![KernelAction::Done]);
            (
                Harness {
                    kernel,
                    writes: Vec::new(),
                },
                bases,
            )
        }

        fn feed(&mut self, data: &[u8], last: bool) {
            let actions = self.kernel.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(data),
                last,
            });
            for a in actions {
                if let KernelAction::DmaWrite { vaddr, data } = a {
                    self.writes.push((vaddr, data.to_vec()));
                }
            }
        }

        /// Reconstructs each partition's contents from the DMA writes.
        fn partition_contents(&self, bases: &[u64]) -> Vec<Vec<u64>> {
            let mut parts: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); bases.len()];
            for (addr, data) in &self.writes {
                let pid = (addr >> 20) as usize;
                parts[pid].push((*addr, data.clone()));
            }
            parts
                .into_iter()
                .enumerate()
                .map(|(pid, mut writes)| {
                    writes.sort_by_key(|(a, _)| *a);
                    // Writes must be contiguous from the partition base.
                    let mut cursor = bases[pid];
                    let mut values = Vec::new();
                    for (addr, data) in writes {
                        assert_eq!(addr, cursor, "partition {pid} writes are contiguous");
                        cursor += data.len() as u64;
                        for chunk in data.chunks_exact(8) {
                            values.push(u64::from_le_bytes(chunk.try_into().unwrap()));
                        }
                    }
                    values
                })
                .collect()
        }
    }

    fn tuples(n: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n as usize * 8);
        for i in 0..n {
            out.extend_from_slice(&(i.wrapping_mul(0x5851_F42D_4C95_7F2D)).to_le_bytes());
        }
        out
    }

    #[test]
    fn partitions_match_reference() {
        let (mut h, bases) = Harness::new(16, 1 << 16);
        let data = tuples(1000);
        h.feed(&data, true);
        let got = h.partition_contents(&bases);
        let values: Vec<u64> = data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let want = reference_partition(&values, 16);
        assert_eq!(got, want);
        assert_eq!(h.kernel.values(), 1000);
        assert_eq!(h.kernel.overflowed(), 0);
    }

    #[test]
    fn flushes_in_128_byte_bursts() {
        let (mut h, _) = Harness::new(1, 1 << 16);
        // 40 values to one partition: two full 128 B flushes + final 64 B.
        let data: Vec<u8> = (0..40u64).flat_map(|_| 0u64.to_le_bytes()).collect();
        h.feed(&data, true);
        let lens: Vec<usize> = h.writes.iter().map(|(_, d)| d.len()).collect();
        assert_eq!(lens, vec![128, 128, 64]);
    }

    #[test]
    fn values_split_across_packets_are_reassembled() {
        let (mut h, bases) = Harness::new(4, 1 << 16);
        let data = tuples(100);
        // Feed in awkward chunk sizes that split 8 B values.
        let mut fed = 0;
        for (i, chunk) in data.chunks(13).enumerate() {
            fed += chunk.len();
            let last = fed == data.len();
            h.feed(chunk, last);
            let _ = i;
        }
        let got = h.partition_contents(&bases);
        let values: Vec<u64> = data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(got, reference_partition(&values, 4));
    }

    #[test]
    fn overflowing_partition_counts_drops() {
        // Capacity of one value (8 B) per partition.
        let (mut h, _) = Harness::new(1, 8);
        let data: Vec<u8> = (0..5u64).flat_map(|_| 8u64.to_le_bytes()).collect();
        h.feed(&data, true);
        assert_eq!(h.kernel.overflowed(), 4, "four of five values dropped");
        let total: usize = h.writes.iter().map(|(_, d)| d.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn data_before_configuration_is_ignored() {
        let mut k = ShuffleKernel::new();
        let actions = k.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::from(tuples(4)),
            last: true,
        });
        assert!(actions.is_empty());
    }

    #[test]
    fn invalid_partition_counts_are_rejected() {
        let mut k = ShuffleKernel::new();
        for bad in [0u32, 3, 2048] {
            let actions = k.on_event(KernelEvent::Invoke {
                qpn: 1,
                params: ShuffleParams {
                    histogram_addr: 0,
                    num_partitions: bad,
                }
                .encode(),
            });
            assert!(actions.is_empty(), "count {bad} must be rejected");
        }
    }

    #[test]
    fn multiset_is_preserved() {
        let (mut h, bases) = Harness::new(64, 1 << 20);
        let data = tuples(5000);
        h.feed(&data, true);
        let mut got: Vec<u64> = h.partition_contents(&bases).concat();
        let mut want: Vec<u64> = data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
