//! The consistency kernel: CRC64-verified object reads with NIC-side retry.
//!
//! §6.3: "This kernel, consistency kernel, reads a data object from the
//! remote host memory, calculates the CRC64 checksum over the object, and
//! verifies its correctness on the remote NIC. In case of inconsistency,
//! the kernel re-reads the data object, otherwise it issues an RDMA write
//! to place the object in the requester's memory."
//!
//! The object layout is the Pilaf convention the paper cites: each object
//! stores its checksum inline (here: an 8 B CRC64 header, see
//! [`crate::layouts::build_object_store`]). Retries happen entirely over
//! PCIe — the Fig 10 result that StRoM tolerates even a 50 % failure rate
//! with minimal overhead, because a retry costs ~1.5 µs instead of a
//! network round trip.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::crc64::crc64;
use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_INCONSISTENT,
};

/// Parameters of the consistency kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyParams {
    /// Address of the object header (CRC64) in remote host memory.
    pub object_addr: u64,
    /// Object length including the 8 B CRC header.
    pub object_len: u32,
    /// Requester-side address the verified object is written to.
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const CONSISTENCY_PARAMS_LEN: usize = 20;

impl ConsistencyParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(CONSISTENCY_PARAMS_LEN);
        out.extend_from_slice(&self.object_addr.to_le_bytes());
        out.extend_from_slice(&self.object_len.to_le_bytes());
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<ConsistencyParams> {
        if buf.len() < CONSISTENCY_PARAMS_LEN {
            return None;
        }
        Some(ConsistencyParams {
            object_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            object_len: u32::from_le_bytes(buf[8..12].try_into().expect("sized")),
            target_address: u64::from_le_bytes(buf[12..20].try_into().expect("sized")),
        })
    }
}

/// Verifies an object's inline checksum: `[crc64 (8 B)] [payload]`.
pub fn verify_object(object: &[u8]) -> bool {
    if object.len() < 8 {
        return false;
    }
    let stored = u64::from_le_bytes(object[..8].try_into().expect("sized"));
    crc64(&object[8..]) == stored
}

/// Retries before the kernel gives up and reports an error.
const MAX_RETRIES: u32 = 64;

/// DMA tag for object reads.
const TAG_OBJECT: u32 = 1;

#[derive(Debug)]
enum State {
    Idle,
    Reading {
        qpn: Qpn,
        params: ConsistencyParams,
        attempts: u32,
    },
}

/// The consistency kernel FSM.
#[derive(Debug)]
pub struct ConsistencyKernel {
    state: State,
    /// Re-reads performed over the kernel's lifetime (Fig 10 diagnostics).
    retries: u64,
}

impl Default for ConsistencyKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsistencyKernel {
    /// Creates an idle kernel.
    pub fn new() -> Self {
        Self {
            state: State::Idle,
            retries: 0,
        }
    }

    /// Total re-reads performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn read_object(
        qpn: Qpn,
        params: ConsistencyParams,
        attempts: u32,
    ) -> (State, Vec<KernelAction>) {
        (
            State::Reading {
                qpn,
                params,
                attempts,
            },
            vec![KernelAction::DmaRead {
                tag: TAG_OBJECT,
                vaddr: params.object_addr,
                len: params.object_len,
            }],
        )
    }
}

impl Kernel for ConsistencyKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::CONSISTENCY
    }

    fn name(&self) -> &'static str {
        "consistency"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = ConsistencyParams::decode(&params) else {
                    return vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: 0,
                            data: Bytes::copy_from_slice(&error_word(ERR_BAD_PARAMS)),
                        },
                        KernelAction::Done,
                    ];
                };
                let (state, actions) = Self::read_object(qpn, p, 1);
                self.state = state;
                actions
            }
            KernelEvent::DmaData { tag, data } => {
                let State::Reading {
                    qpn,
                    params,
                    attempts,
                } = std::mem::replace(&mut self.state, State::Idle)
                else {
                    return Vec::new();
                };
                if tag != TAG_OBJECT {
                    return Vec::new();
                }
                if verify_object(&data) {
                    return vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: params.target_address,
                            data,
                        },
                        KernelAction::Done,
                    ];
                }
                if attempts >= MAX_RETRIES {
                    return vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: params.target_address,
                            data: Bytes::copy_from_slice(&error_word(ERR_INCONSISTENT)),
                        },
                        KernelAction::Done,
                    ];
                }
                // Inconsistent: re-read over PCIe (§6.3).
                self.retries += 1;
                let (state, actions) = Self::read_object(qpn, params, attempts + 1);
                self.state = state;
                actions
            }
            KernelEvent::RoceData { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::build_object_store;
    use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

    fn mem() -> (HostMemory, u64) {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        (m, base)
    }

    #[test]
    fn params_round_trip() {
        let p = ConsistencyParams {
            object_addr: 0x1111,
            object_len: 4096,
            target_address: 0x2222,
        };
        assert_eq!(ConsistencyParams::decode(&p.encode()), Some(p));
        assert!(ConsistencyParams::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn consistent_object_is_returned_first_try() {
        let (mut m, base) = mem();
        let store = build_object_store(&mut m, base, 1, 256);
        let addr = store.object_addrs[0];
        let mut k = ConsistencyKernel::new();
        let params = ConsistencyParams {
            object_addr: addr,
            object_len: store.object_size(),
            target_address: 0x4000,
        };
        let a1 = k.on_event(KernelEvent::Invoke {
            qpn: 2,
            params: params.encode(),
        });
        let KernelAction::DmaRead { tag, vaddr, len } = a1[0] else {
            panic!("expected a DMA read");
        };
        assert_eq!((vaddr, len), (addr, 264));
        let data = Bytes::from(m.read(vaddr, len as usize));
        let a2 = k.on_event(KernelEvent::DmaData {
            tag,
            data: data.clone(),
        });
        assert_eq!(
            a2[0],
            KernelAction::RoceSend {
                qpn: 2,
                remote_vaddr: 0x4000,
                data
            }
        );
        assert_eq!(a2[1], KernelAction::Done);
        assert_eq!(k.retries(), 0);
    }

    #[test]
    fn inconsistent_read_triggers_reread() {
        let (mut m, base) = mem();
        let store = build_object_store(&mut m, base, 1, 128);
        let addr = store.object_addrs[0];
        let mut k = ConsistencyKernel::new();
        let params = ConsistencyParams {
            object_addr: addr,
            object_len: store.object_size(),
            target_address: 0x4000,
        };
        let a1 = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: params.encode(),
        });
        let KernelAction::DmaRead { tag, vaddr, len } = a1[0] else {
            panic!("expected a DMA read");
        };
        // First read arrives corrupted (torn read during concurrent
        // modification).
        let mut corrupted = m.read(vaddr, len as usize);
        corrupted[20] ^= 0xff;
        let a2 = k.on_event(KernelEvent::DmaData {
            tag,
            data: Bytes::from(corrupted),
        });
        let KernelAction::DmaRead { tag: tag2, .. } = a2[0] else {
            panic!("expected a re-read, got {:?}", a2[0]);
        };
        assert_eq!(k.retries(), 1);
        // Second read is clean.
        let clean = Bytes::from(m.read(vaddr, len as usize));
        let a3 = k.on_event(KernelEvent::DmaData {
            tag: tag2,
            data: clean.clone(),
        });
        assert!(matches!(&a3[0], KernelAction::RoceSend { data, .. } if *data == clean));
    }

    #[test]
    fn permanently_corrupt_object_reports_error() {
        let (mut m, base) = mem();
        let store = build_object_store(&mut m, base, 1, 64);
        let addr = store.object_addrs[0];
        // Corrupt the object in memory itself.
        let mut b = m.read(addr + 12, 1);
        b[0] ^= 1;
        m.write(addr + 12, &b);
        let mut k = ConsistencyKernel::new();
        let params = ConsistencyParams {
            object_addr: addr,
            object_len: store.object_size(),
            target_address: 0x8000,
        };
        let mut actions = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: params.encode(),
        });
        let mut reads = 0;
        while let Some(KernelAction::DmaRead { tag, vaddr, len }) = actions.first() {
            reads += 1;
            let data = Bytes::from(m.read(*vaddr, *len as usize));
            actions = k.on_event(KernelEvent::DmaData { tag: *tag, data });
        }
        assert_eq!(reads, MAX_RETRIES);
        assert!(matches!(&actions[0], KernelAction::RoceSend { data, .. }
            if crate::framework::decode_error(u64::from_le_bytes(data[..8].try_into().unwrap()))
                == Some(ERR_INCONSISTENT)));
    }

    #[test]
    fn verify_object_edge_cases() {
        assert!(!verify_object(b""));
        assert!(!verify_object(&[0u8; 7]));
        // Header-only object: CRC of empty payload is 0.
        assert!(verify_object(&[0u8; 8]));
    }
}
