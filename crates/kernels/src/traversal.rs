//! The traversal kernel: pointer chasing over remote data structures.
//!
//! §6.2: "The key idea of StRoM is to replace high-latency network
//! round-trips with PCIe round trips of relatively low latency. The kernel
//! starts from a root element and then extracts one or multiple keys in
//! that element and compares them against a given key. In case of a match,
//! the data value associated to that key is read out. Otherwise the next
//! element in the data structure is fetched (or the traversal terminates
//! if it is the leaf/tail element)."
//!
//! The parameters are exactly Table 2 (plus the requester-side target
//! address that Listing 3's `getTargetAddr()` shows the params carry).
//! With them the kernel traverses "linked lists, hash tables, trees,
//! graphs, skip lists, and other data structures".

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_NOT_FOUND,
};
use crate::layouts::ELEMENT_SIZE;

/// The comparison predicate of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Predicate {
    /// Element key equals the lookup key.
    Equal = 0,
    /// Element key is less than the lookup key.
    LessThan = 1,
    /// Element key is greater than the lookup key.
    GreaterThan = 2,
    /// Element key differs from the lookup key.
    NotEqual = 3,
}

impl Predicate {
    /// Decodes from the parameter byte.
    pub fn from_u8(v: u8) -> Option<Predicate> {
        match v {
            0 => Some(Predicate::Equal),
            1 => Some(Predicate::LessThan),
            2 => Some(Predicate::GreaterThan),
            3 => Some(Predicate::NotEqual),
            _ => None,
        }
    }

    /// Applies the predicate: does `element_key` match against
    /// `lookup_key`?
    pub fn matches(self, element_key: u64, lookup_key: u64) -> bool {
        match self {
            Predicate::Equal => element_key == lookup_key,
            Predicate::LessThan => element_key < lookup_key,
            Predicate::GreaterThan => element_key > lookup_key,
            Predicate::NotEqual => element_key != lookup_key,
        }
    }
}

/// The traversal-kernel parameters (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalParams {
    /// "The address of the initial element in the remote data structure."
    pub remote_address: u64,
    /// "The size of the final value to be read."
    pub value_size: u32,
    /// "The lookup key."
    pub key: u64,
    /// "Specifies where the key(s) is/are located in the data structure
    /// element": a bitmask over the sixteen 4 B field positions; a set bit
    /// `i` means an 8 B key starts at byte `4 * i`.
    pub key_mask: u16,
    /// "Operation applied to compare the key in the command and in the
    /// data structure."
    pub predicate: Predicate,
    /// "The position of the value pointer within the data structure
    /// element which can be absolute or relative to the key that matched"
    /// (4 B units).
    pub value_ptr_position: u8,
    /// "Indicates if the valuePtrPosition is relative to the key or
    /// absolute."
    pub is_relative_position: bool,
    /// "The position of the pointer to the next element … read in case
    /// none of the keys in the current element matched" (4 B units).
    pub next_element_ptr_position: u8,
    /// "Indicates if the data structure element contains a pointer to a
    /// next element."
    pub next_element_ptr_valid: bool,
    /// Where on the requester the result is written (Listing 3's
    /// `getTargetAddr()`).
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const TRAVERSAL_PARAMS_LEN: usize = 36;

impl TraversalParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(TRAVERSAL_PARAMS_LEN);
        out.extend_from_slice(&self.remote_address.to_le_bytes());
        out.extend_from_slice(&self.value_size.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.key_mask.to_le_bytes());
        out.push(self.predicate as u8);
        out.push(self.value_ptr_position);
        out.push(u8::from(self.is_relative_position));
        out.push(self.next_element_ptr_position);
        out.push(u8::from(self.next_element_ptr_valid));
        out.push(0); // Pad to 4 B alignment.
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<TraversalParams> {
        if buf.len() < TRAVERSAL_PARAMS_LEN {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("sized"));
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("sized"));
        let u16_at = |i: usize| u16::from_le_bytes(buf[i..i + 2].try_into().expect("sized"));
        Some(TraversalParams {
            remote_address: u64_at(0),
            value_size: u32_at(8),
            key: u64_at(12),
            key_mask: u16_at(20),
            predicate: Predicate::from_u8(buf[22])?,
            value_ptr_position: buf[23],
            is_relative_position: buf[24] != 0,
            next_element_ptr_position: buf[25],
            next_element_ptr_valid: buf[26] != 0,
            target_address: u64_at(28),
        })
    }

    /// Parameters for the Figure 6 linked list, exactly as the paper sets
    /// them: "we set the keyMask to 1, the valuePtrPosition to 4, and the
    /// nextElementPtrPosition to 2".
    pub fn for_linked_list(head: u64, key: u64, value_size: u32, target_address: u64) -> Self {
        TraversalParams {
            remote_address: head,
            value_size,
            key,
            key_mask: 1,
            predicate: Predicate::Equal,
            value_ptr_position: 4,
            is_relative_position: false,
            next_element_ptr_position: 2,
            next_element_ptr_valid: true,
            target_address,
        }
    }

    /// Parameters for a GET on the Pilaf-style hash table: keys in the
    /// three bucket positions, value pointer relative to the matched key,
    /// no next-element chaining (best case of §6.2's hash table example).
    pub fn for_hash_table(entry: u64, key: u64, value_size: u32, target_address: u64) -> Self {
        use crate::layouts::ht_layout::{BUCKET_KEY_POS, VALUE_PTR_REL};
        let mut mask = 0u16;
        for pos in BUCKET_KEY_POS {
            mask |= 1 << pos;
        }
        TraversalParams {
            remote_address: entry,
            value_size,
            key,
            key_mask: mask,
            predicate: Predicate::Equal,
            value_ptr_position: VALUE_PTR_REL,
            is_relative_position: true,
            next_element_ptr_position: 0,
            next_element_ptr_valid: false,
            target_address,
        }
    }
}

/// Guard against cyclic structures: maximum elements visited per lookup.
const MAX_HOPS: u32 = 65_536;

/// DMA tag for element fetches.
const TAG_ELEMENT: u32 = 1;
/// DMA tag for the value fetch.
const TAG_VALUE: u32 = 2;

#[derive(Debug)]
enum State {
    Idle,
    FetchingElement {
        qpn: Qpn,
        params: TraversalParams,
        hops: u32,
    },
    FetchingValue {
        qpn: Qpn,
        target_address: u64,
    },
}

/// The traversal kernel FSM.
#[derive(Debug)]
pub struct TraversalKernel {
    state: State,
    /// Elements visited by the current/last invocation (diagnostics; the
    /// latency figures correlate with this).
    last_hops: u32,
}

impl Default for TraversalKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl TraversalKernel {
    /// Creates an idle kernel.
    pub fn new() -> Self {
        Self {
            state: State::Idle,
            last_hops: 0,
        }
    }

    /// Elements visited by the most recent lookup.
    pub fn last_hops(&self) -> u32 {
        self.last_hops
    }

    fn fail(&mut self, qpn: Qpn, target: u64, code: u16) -> Vec<KernelAction> {
        self.state = State::Idle;
        vec![
            KernelAction::RoceSend {
                qpn,
                remote_vaddr: target,
                data: Bytes::copy_from_slice(&error_word(code)),
            },
            KernelAction::Done,
        ]
    }

    fn evaluate_element(
        &mut self,
        qpn: Qpn,
        params: TraversalParams,
        hops: u32,
        element: &[u8],
    ) -> Vec<KernelAction> {
        let field_u64 = |pos: u8| {
            let off = usize::from(pos) * 4;
            if off + 8 <= element.len() {
                Some(u64::from_le_bytes(
                    element[off..off + 8].try_into().expect("sized"),
                ))
            } else {
                None
            }
        };
        // Compare the lookup key against every masked key position —
        // "concurrently" in hardware (the UNROLL pragma of Listing 4).
        let mut matched_pos: Option<u8> = None;
        for pos in 0..16u8 {
            if params.key_mask & (1 << pos) == 0 {
                continue;
            }
            let Some(element_key) = field_u64(pos) else {
                return self.fail(qpn, params.target_address, ERR_BAD_PARAMS);
            };
            // Position 0 keys of value 0 mark empty buckets in the
            // layouts; never match those.
            if element_key == 0 {
                continue;
            }
            if params.predicate.matches(element_key, params.key) {
                matched_pos = Some(pos);
                break;
            }
        }
        if let Some(pos) = matched_pos {
            let ptr_pos = if params.is_relative_position {
                pos + params.value_ptr_position
            } else {
                params.value_ptr_position
            };
            let Some(value_ptr) = field_u64(ptr_pos) else {
                return self.fail(qpn, params.target_address, ERR_BAD_PARAMS);
            };
            self.last_hops = hops;
            self.state = State::FetchingValue {
                qpn,
                target_address: params.target_address,
            };
            return vec![KernelAction::DmaRead {
                tag: TAG_VALUE,
                vaddr: value_ptr,
                len: params.value_size,
            }];
        }
        // No match: chase the next pointer, if the structure has one.
        if !params.next_element_ptr_valid {
            self.last_hops = hops;
            return self.fail(qpn, params.target_address, ERR_NOT_FOUND);
        }
        let Some(next) = field_u64(params.next_element_ptr_position) else {
            return self.fail(qpn, params.target_address, ERR_BAD_PARAMS);
        };
        if next == 0 || hops >= MAX_HOPS {
            self.last_hops = hops;
            return self.fail(qpn, params.target_address, ERR_NOT_FOUND);
        }
        self.state = State::FetchingElement {
            qpn,
            params,
            hops: hops + 1,
        };
        vec![KernelAction::DmaRead {
            tag: TAG_ELEMENT,
            vaddr: next,
            len: ELEMENT_SIZE as u32,
        }]
    }
}

impl Kernel for TraversalKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::TRAVERSAL
    }

    fn name(&self) -> &'static str {
        "traversal"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = TraversalParams::decode(&params) else {
                    return self.fail(qpn, 0, ERR_BAD_PARAMS);
                };
                self.state = State::FetchingElement {
                    qpn,
                    params: p,
                    hops: 1,
                };
                vec![KernelAction::DmaRead {
                    tag: TAG_ELEMENT,
                    vaddr: p.remote_address,
                    len: ELEMENT_SIZE as u32,
                }]
            }
            KernelEvent::DmaData { tag, data } => {
                match std::mem::replace(&mut self.state, State::Idle) {
                    State::FetchingElement { qpn, params, hops } if tag == TAG_ELEMENT => {
                        self.evaluate_element(qpn, params, hops, &data)
                    }
                    State::FetchingValue {
                        qpn,
                        target_address,
                    } if tag == TAG_VALUE => {
                        vec![
                            KernelAction::RoceSend {
                                qpn,
                                remote_vaddr: target_address,
                                data,
                            },
                            KernelAction::Done,
                        ]
                    }
                    other => {
                        // Unmatched completion: protocol bug; drop it.
                        self.state = other;
                        Vec::new()
                    }
                }
            }
            KernelEvent::RoceData { .. } => Vec::new(), // Not a stream kernel.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::{build_hash_table, build_linked_list, value_pattern};
    use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

    /// Drives the kernel against real host memory, counting DMA reads —
    /// a miniature kernel fabric.
    fn run(
        kernel: &mut TraversalKernel,
        mem: &mut HostMemory,
        params: TraversalParams,
    ) -> (Vec<KernelAction>, u32) {
        let mut dma_reads = 0;
        let mut actions = kernel.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: params.encode(),
        });
        loop {
            match actions.first() {
                Some(KernelAction::DmaRead { tag, vaddr, len }) => {
                    dma_reads += 1;
                    let data = Bytes::from(mem.read(*vaddr, *len as usize));
                    actions = kernel.on_event(KernelEvent::DmaData { tag: *tag, data });
                }
                _ => return (actions, dma_reads),
            }
        }
    }

    fn mem() -> (HostMemory, u64) {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(4 * HUGE_PAGE_SIZE).unwrap();
        (m, base)
    }

    #[test]
    fn params_encode_decode_round_trip() {
        let p = TraversalParams::for_linked_list(0x1000, 42, 64, 0x9000);
        assert_eq!(TraversalParams::decode(&p.encode()), Some(p));
        let p2 = TraversalParams::for_hash_table(0x2000, 7, 128, 0x9100);
        assert_eq!(TraversalParams::decode(&p2.encode()), Some(p2));
    }

    #[test]
    fn paper_linked_list_parameters() {
        // §6.2: keyMask 1, valuePtrPosition 4, nextElementPtrPosition 2.
        let p = TraversalParams::for_linked_list(0, 0, 0, 0);
        assert_eq!(p.key_mask, 1);
        assert_eq!(p.value_ptr_position, 4);
        assert_eq!(p.next_element_ptr_position, 2);
        assert!(p.next_element_ptr_valid);
        assert!(!p.is_relative_position);
    }

    #[test]
    fn truncated_params_are_rejected() {
        let mut k = TraversalKernel::new();
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: Bytes::from_static(b"short"),
        });
        assert!(matches!(&actions[0], KernelAction::RoceSend { data, .. }
            if crate::framework::decode_error(u64::from_le_bytes(data[..8].try_into().unwrap()))
                == Some(ERR_BAD_PARAMS)));
    }

    #[test]
    fn linked_list_lookup_finds_each_key() {
        let (mut m, base) = mem();
        let keys = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let list = build_linked_list(&mut m, base, &keys, 64);
        let mut k = TraversalKernel::new();
        for (i, &key) in keys.iter().enumerate() {
            let p = TraversalParams::for_linked_list(list.head, key, 64, 0xabc0);
            let (actions, dma_reads) = run(&mut k, &mut m, p);
            // i+1 element reads plus 1 value read.
            assert_eq!(dma_reads as usize, i + 2, "key {key}");
            assert_eq!(k.last_hops() as usize, i + 1);
            match &actions[0] {
                KernelAction::RoceSend {
                    qpn,
                    remote_vaddr,
                    data,
                } => {
                    assert_eq!(*qpn, 1);
                    assert_eq!(*remote_vaddr, 0xabc0);
                    assert_eq!(&data[..], value_pattern(key, 64));
                }
                other => panic!("expected RoceSend, got {other:?}"),
            }
            assert_eq!(actions[1], KernelAction::Done);
        }
    }

    #[test]
    fn missing_key_reaches_tail_and_errors() {
        let (mut m, base) = mem();
        let list = build_linked_list(&mut m, base, &[1, 2, 3], 32);
        let mut k = TraversalKernel::new();
        let p = TraversalParams::for_linked_list(list.head, 99, 32, 0xdef0);
        let (actions, dma_reads) = run(&mut k, &mut m, p);
        assert_eq!(dma_reads, 3, "whole list traversed");
        match &actions[0] {
            KernelAction::RoceSend { data, .. } => {
                let word = u64::from_le_bytes(data[..8].try_into().unwrap());
                assert_eq!(crate::framework::decode_error(word), Some(ERR_NOT_FOUND));
            }
            other => panic!("expected error RoceSend, got {other:?}"),
        }
    }

    #[test]
    fn hash_table_get_is_two_dma_reads() {
        // §6.2: "A GET operation requires in the best case two RDMA READ
        // operations" — on the NIC that is exactly two PCIe reads.
        let (mut m, base) = mem();
        let keys: Vec<u64> = (1..=30).collect();
        let ht = build_hash_table(&mut m, base, 512, &keys, 48);
        let mut k = TraversalKernel::new();
        for &key in &keys {
            let p = TraversalParams::for_hash_table(ht.entry_addr(key), key, 48, 0x5000);
            let (actions, dma_reads) = run(&mut k, &mut m, p);
            assert_eq!(dma_reads, 2, "entry + value for key {key}");
            match &actions[0] {
                KernelAction::RoceSend { data, .. } => {
                    assert_eq!(&data[..], value_pattern(key, 48));
                }
                other => panic!("expected RoceSend, got {other:?}"),
            }
        }
    }

    #[test]
    fn hash_table_miss_has_no_next_pointer() {
        let (mut m, base) = mem();
        let ht = build_hash_table(&mut m, base, 16, &[5, 6, 7], 16);
        let mut k = TraversalKernel::new();
        let p = TraversalParams::for_hash_table(ht.entry_addr(1234), 1234, 16, 0);
        let (actions, dma_reads) = run(&mut k, &mut m, p);
        assert_eq!(dma_reads, 1, "no chaining configured");
        assert!(matches!(&actions[0], KernelAction::RoceSend { data, .. }
            if crate::framework::decode_error(u64::from_le_bytes(data[..8].try_into().unwrap()))
                == Some(ERR_NOT_FOUND)));
    }

    #[test]
    fn predicates_compare_correctly() {
        assert!(Predicate::Equal.matches(5, 5));
        assert!(!Predicate::Equal.matches(5, 6));
        assert!(Predicate::LessThan.matches(4, 5));
        assert!(!Predicate::LessThan.matches(5, 5));
        assert!(Predicate::GreaterThan.matches(6, 5));
        assert!(Predicate::NotEqual.matches(4, 5));
        assert!(!Predicate::NotEqual.matches(5, 5));
        assert_eq!(Predicate::from_u8(7), None);
    }

    #[test]
    fn greater_than_traversal_acts_as_skip_scan() {
        // Find the first element whose key exceeds the probe: a B-tree /
        // skip-list style search the flexible parameters enable (§6.2).
        let (mut m, base) = mem();
        let list = build_linked_list(&mut m, base, &[10, 20, 30, 40], 16);
        let mut p = TraversalParams::for_linked_list(list.head, 25, 16, 0x7700);
        p.predicate = Predicate::GreaterThan;
        let mut k = TraversalKernel::new();
        let (actions, dma_reads) = run(&mut k, &mut m, p);
        // Elements 10, 20 fail; 30 matches: 3 element reads + 1 value.
        assert_eq!(dma_reads, 4);
        match &actions[0] {
            KernelAction::RoceSend { data, .. } => {
                assert_eq!(&data[..], value_pattern(30, 16));
            }
            other => panic!("expected RoceSend, got {other:?}"),
        }
    }

    #[test]
    fn cycle_guard_terminates() {
        let (mut m, base) = mem();
        // A 2-element cycle with keys that never match.
        let list = build_linked_list(&mut m, base, &[1, 2], 16);
        // Point element 1's next back at element 0.
        m.write(
            list.element_addrs[1] + 8,
            &list.element_addrs[0].to_le_bytes(),
        );
        let p = TraversalParams::for_linked_list(list.head, 99, 16, 0);
        let mut k = TraversalKernel::new();
        let (actions, dma_reads) = run(&mut k, &mut m, p);
        assert!(dma_reads <= MAX_HOPS + 1);
        assert!(matches!(&actions[0], KernelAction::RoceSend { .. }));
    }
}
