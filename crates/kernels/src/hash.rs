//! A 64-bit mixing hash shared by the HLL kernel and its CPU baseline.
//!
//! HyperLogLog quality depends on a well-mixed hash. We use the
//! SplitMix64 finalizer — cheap enough for a line-rate hardware pipeline
//! (a few multipliers and shifts, cf. the robust hashes of Kara et
//! al. \[27\] cited in §6.4) and statistically strong enough for HLL's
//! uniformity assumption.

use crate::simd::U64x4;
use crate::simd_dispatch;

/// Mixes a 64-bit value (SplitMix64 finalizer).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes an 8-byte little-endian item (the 8 B tuples of §6.4/§7.2).
#[inline]
pub fn hash_item(bytes: [u8; 8]) -> u64 {
    mix64(u64::from_le_bytes(bytes))
}

/// Four SplitMix64 finalizers in lock-step — the same constants and shift
/// schedule as [`mix64`], one value per lane.
#[inline(always)]
pub fn mix64_x4(x: U64x4) -> U64x4 {
    let x = x.wrapping_add(U64x4::splat(0x9E37_79B9_7F4A_7C15));
    let x = x
        .xor(x.shr(30))
        .wrapping_mul(U64x4::splat(0xBF58_476D_1CE4_E5B9));
    let x = x
        .xor(x.shr(27))
        .wrapping_mul(U64x4::splat(0x94D0_49BB_1331_11EB));
    x.xor(x.shr(31))
}

simd_dispatch! {
    /// Hashes `values` into `out` four lanes at a time. Bit-identical to a
    /// [`mix64`] loop (differential-tested; [`mix64_batch_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn mix64_batch(values: &[u64], out: &mut [u64]) {
        assert_eq!(values.len(), out.len(), "in/out length mismatch");
        let mut i = 0;
        while i + 4 <= values.len() {
            out[i..i + 4].copy_from_slice(&mix64_x4(U64x4::load(&values[i..])).to_array());
            i += 4;
        }
        for j in i..values.len() {
            out[j] = mix64(values[j]);
        }
    }
}

/// Scalar-loop reference for [`mix64_batch`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mix64_batch_reference(values: &[u64], out: &mut [u64]) {
    assert_eq!(values.len(), out.len(), "in/out length mismatch");
    for (o, &v) in out.iter_mut().zip(values) {
        *o = mix64(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn zero_does_not_map_to_zero() {
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn avalanche_is_reasonable() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64 * 16;
        for i in 0..16u64 {
            let x = i.wrapping_mul(0x1234_5678_9abc_def1);
            let h = mix64(x);
            for bit in 0..64 {
                total += (h ^ mix64(x ^ (1 << bit))).count_ones();
            }
        }
        let avg = f64::from(total) / f64::from(trials);
        assert!((24.0..40.0).contains(&avg), "avalanche avg = {avg}");
    }

    #[test]
    fn leading_zero_distribution_is_geometric() {
        // P(leading_zeros >= k) ~ 2^-k: sanity for the HLL estimator.
        let n = 100_000u64;
        let ge8 = (0..n).filter(|&i| mix64(i).leading_zeros() >= 8).count();
        let expected = n as f64 / 256.0;
        assert!(
            (ge8 as f64) > expected * 0.7 && (ge8 as f64) < expected * 1.3,
            "ge8 = {ge8}, expected ~{expected}"
        );
    }

    #[test]
    fn hash_item_uses_little_endian() {
        assert_eq!(hash_item(1u64.to_le_bytes()), mix64(1));
    }

    #[test]
    fn batch_matches_scalar_at_every_width() {
        let values: Vec<u64> = (0..37u64)
            .map(|i| i.wrapping_mul(0xdead_beef_cafe))
            .collect();
        for len in 0..=values.len() {
            let mut fast = vec![0u64; len];
            let mut slow = vec![0u64; len];
            mix64_batch(&values[..len], &mut fast);
            mix64_batch_reference(&values[..len], &mut slow);
            assert_eq!(fast, slow, "len = {len}");
        }
    }

    #[test]
    fn x4_lanes_are_independent() {
        let h = mix64_x4(U64x4::load(&[0, 1, u64::MAX, 42]));
        assert_eq!(
            h.to_array(),
            [mix64(0), mix64(1), mix64(u64::MAX), mix64(42)]
        );
    }
}
