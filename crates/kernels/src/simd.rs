//! A portable SIMD layer for the kernel hot loops.
//!
//! The FPGA kernels of the paper process one 64 B word per clock (II = 1,
//! §3.4); the simulator's software counterparts of those inner loops —
//! CRC64, the SplitMix64 hash, HLL register updates, radix partitioning,
//! and the filter/bloom predicate scans — are the hottest per-byte code in
//! the KV-serving and shuffle workloads. This module gives them explicit
//! lane types in the style of the Eä compute-pattern taxonomy (streaming /
//! reduction classes with explicit SIMD):
//!
//! - [`U64x4`] / [`U8x32`]: safe fixed-width lane types whose operations
//!   are plain per-lane array loops. Compiled with the AVX2 target feature
//!   they lower to 256-bit vector instructions; without it they remain
//!   correct scalar code.
//! - [`simd_dispatch!`]: wraps a function body twice — once baseline, once
//!   `#[target_feature(enable = "avx2")]` — and selects at runtime via
//!   [`backend`]. This is the standard safe-dispatch pattern: the unsafe
//!   AVX2 entry point is only reached after `is_x86_feature_detected!`
//!   confirmed the ISA, and the body itself is ordinary safe Rust.
//!
//! **Differential-reference policy** (same as [`crate::crc64::crc64_reference`]):
//! every vectorized routine keeps its naive scalar implementation as a
//! separately-compiled reference, and unit tests plus `wire_micro` assert
//! bit-identical outputs at every width, including the scalar fallback
//! path. The lane types never change results — only schedules.

use std::sync::OnceLock;

/// The vector backend selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// No usable vector ISA detected: every `simd_dispatch!` function runs
    /// its baseline compilation.
    Scalar,
    /// x86-64 AVX2: 256-bit lanes, 4 × u64 / 32 × u8 per operation.
    Avx2,
}

impl Backend {
    /// The backend name recorded in `BENCH_wire.json`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Number of u64 lanes one operation covers.
    pub fn lanes_u64(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => U64x4::LANES,
        }
    }
}

/// Detects the best available backend once and caches it.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        Backend::Scalar
    })
}

/// Wraps a function body in runtime AVX2 dispatch.
///
/// The body is compiled twice: once at the crate's baseline target and
/// once under `#[target_feature(enable = "avx2")]`; [`backend`] picks the
/// entry point per call. Results are identical by construction — both
/// entry points share the one body.
#[macro_export]
macro_rules! simd_dispatch {
    (
        $(#[$meta:meta])*
        pub fn $name:ident($($arg:ident : $ty:ty),* $(,)?) $(-> $ret:ty)? $body:block
    ) => {
        $(#[$meta])*
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            #[inline(always)]
            fn body($($arg: $ty),*) $(-> $ret)? $body

            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2($($arg: $ty),*) $(-> $ret)? {
                    body($($arg),*)
                }
                if $crate::simd::backend() == $crate::simd::Backend::Avx2 {
                    // SAFETY: `backend()` returned Avx2 only after
                    // `is_x86_feature_detected!("avx2")` succeeded.
                    return unsafe { avx2($($arg),*) };
                }
            }
            body($($arg),*)
        }
    };
}

/// Four u64 lanes. Operations are per-lane array loops that the compiler
/// lowers to 256-bit instructions when the AVX2 target feature is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64x4(pub [u64; 4]);

impl U64x4 {
    /// Lane count.
    pub const LANES: usize = 4;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: u64) -> Self {
        Self([v; 4])
    }

    /// Loads the first four elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than four elements.
    #[inline(always)]
    pub fn load(s: &[u64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [u64; 4] {
        self.0
    }

    /// Lane-wise wrapping addition.
    #[inline(always)]
    pub fn wrapping_add(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
    }

    /// Lane-wise wrapping multiplication.
    #[inline(always)]
    pub fn wrapping_mul(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i].wrapping_mul(o.0[i])))
    }

    /// Lane-wise XOR.
    #[inline(always)]
    pub fn xor(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] ^ o.0[i]))
    }

    /// Lane-wise AND.
    #[inline(always)]
    pub fn and(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & o.0[i]))
    }

    /// Lane-wise logical shift right (a method, not `std::ops::Shr`: the
    /// callers shift by a scalar count, not lane-wise).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn shr(self, n: u32) -> Self {
        Self(std::array::from_fn(|i| self.0[i] >> n))
    }

    /// Lane-wise logical shift left (a method, not `std::ops::Shl`: the
    /// callers shift by a scalar count, not lane-wise).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn shl(self, n: u32) -> Self {
        Self(std::array::from_fn(|i| self.0[i] << n))
    }

    /// A 4-bit mask: bit i set iff lane i equals `o`'s lane i.
    #[inline(always)]
    pub fn eq_bits(self, o: Self) -> u32 {
        let mut m = 0u32;
        for i in 0..4 {
            m |= u32::from(self.0[i] == o.0[i]) << i;
        }
        m
    }

    /// A 4-bit mask: bit i set iff lane i is (unsigned) greater than
    /// `o`'s lane i.
    #[inline(always)]
    pub fn gt_bits(self, o: Self) -> u32 {
        let mut m = 0u32;
        for i in 0..4 {
            m |= u32::from(self.0[i] > o.0[i]) << i;
        }
        m
    }

    /// A 4-bit mask: bit i set iff lane i is (unsigned) less than `o`'s
    /// lane i.
    #[inline(always)]
    pub fn lt_bits(self, o: Self) -> u32 {
        let mut m = 0u32;
        for i in 0..4 {
            m |= u32::from(self.0[i] < o.0[i]) << i;
        }
        m
    }
}

/// Thirty-two u8 lanes (one 256-bit register / half a 64 B datapath word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U8x32(pub [u8; 32]);

impl U8x32 {
    /// Lane count.
    pub const LANES: usize = 32;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: u8) -> Self {
        Self([v; 32])
    }

    /// Loads the first 32 bytes of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than 32 bytes.
    #[inline(always)]
    pub fn load(s: &[u8]) -> Self {
        let mut r = [0u8; 32];
        r.copy_from_slice(&s[..32]);
        Self(r)
    }

    /// A 32-bit mask: bit i set iff lane i equals `o`'s lane i (the
    /// classic compare + movemask idiom).
    #[inline(always)]
    pub fn eq_bitmask(self, o: Self) -> u32 {
        let mut m = 0u32;
        for i in 0..32 {
            m |= u32::from(self.0[i] == o.0[i]) << i;
        }
        m
    }
}

simd_dispatch! {
    /// Constant-shape byte-slice equality over 32-byte lanes — the
    /// vectorized compare the KV GET verification path runs per value.
    /// Reference: [`bytes_equal_reference`].
    pub fn bytes_equal(a: &[u8], b: &[u8]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut i = 0;
        while i + U8x32::LANES <= a.len() {
            if U8x32::load(&a[i..]).eq_bitmask(U8x32::load(&b[i..])) != u32::MAX {
                return false;
            }
            i += U8x32::LANES;
        }
        a[i..] == b[i..]
    }
}

/// Byte-at-a-time equality: the differential reference for
/// [`bytes_equal`].
pub fn bytes_equal_reference(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for i in 0..a.len() {
        if a[i] != b[i] {
            return false;
        }
    }
    true
}

/// Comparison selector for [`mask_cmp`]: which unsigned relation each lane
/// is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Lane == pivot.
    Eq,
    /// Lane != pivot.
    Ne,
    /// Lane < pivot (unsigned).
    Lt,
    /// Lane > pivot (unsigned).
    Gt,
}

simd_dispatch! {
    /// Compares up to 64 `values` against `pivot`; bit i of the result is
    /// set iff `values[i] <cmp> pivot`. Reference: [`mask_cmp_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more than 64 elements.
    pub fn mask_cmp(values: &[u64], cmp: Cmp, pivot: u64) -> u64 {
        assert!(values.len() <= 64, "one mask word covers 64 values");
        // Hand-unswitched so each loop is a single branchless compare per
        // lane that the compiler auto-vectorizes (compare + sign-mask
        // extraction) under the wide entry point; a hand-rolled U64x4
        // formulation measured *slower* because the 4-lane bool
        // extraction did not lower to a movemask.
        let mut m = 0u64;
        match cmp {
            Cmp::Eq => {
                for (i, &v) in values.iter().enumerate() {
                    m |= u64::from(v == pivot) << i;
                }
            }
            Cmp::Ne => {
                for (i, &v) in values.iter().enumerate() {
                    m |= u64::from(v != pivot) << i;
                }
            }
            Cmp::Lt => {
                for (i, &v) in values.iter().enumerate() {
                    m |= u64::from(v < pivot) << i;
                }
            }
            Cmp::Gt => {
                for (i, &v) in values.iter().enumerate() {
                    m |= u64::from(v > pivot) << i;
                }
            }
        }
        m
    }
}

/// One-value-at-a-time comparison mask: the differential reference for
/// [`mask_cmp`].
///
/// # Panics
///
/// Panics if `values` holds more than 64 elements.
pub fn mask_cmp_reference(values: &[u64], cmp: Cmp, pivot: u64) -> u64 {
    assert!(values.len() <= 64, "one mask word covers 64 values");
    let mut m = 0u64;
    for (i, &v) in values.iter().enumerate() {
        let hit = match cmp {
            Cmp::Eq => v == pivot,
            Cmp::Ne => v != pivot,
            Cmp::Lt => v < pivot,
            Cmp::Gt => v > pivot,
        };
        m |= u64::from(hit) << i;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable() {
        assert_eq!(backend(), backend());
        assert_eq!(backend().lanes_u64() > 1, backend() != Backend::Scalar);
        assert!(!backend().name().is_empty());
    }

    #[test]
    fn u64x4_lane_ops() {
        let a = U64x4::load(&[1, 2, u64::MAX, 1 << 63]);
        let b = U64x4::splat(2);
        assert_eq!(a.wrapping_add(b).to_array(), [3, 4, 1, (1 << 63) + 2]);
        assert_eq!(a.wrapping_mul(b).0[2], u64::MAX.wrapping_mul(2));
        assert_eq!(a.xor(a).to_array(), [0; 4]);
        assert_eq!(a.and(b).to_array(), [0, 2, 2, 0]);
        assert_eq!(a.shr(1).0[3], 1 << 62);
        assert_eq!(a.shl(1).0[0], 2);
        assert_eq!(a.eq_bits(U64x4::splat(2)), 0b0010);
        // gt/lt are unsigned: MAX and 1<<63 are both > 2.
        assert_eq!(a.gt_bits(b), 0b1100);
        assert_eq!(a.lt_bits(b), 0b0001);
    }

    #[test]
    fn u8x32_movemask() {
        let mut a = [7u8; 32];
        let b = [7u8; 32];
        assert_eq!(U8x32(a).eq_bitmask(U8x32(b)), u32::MAX);
        a[0] = 0;
        a[31] = 0;
        let m = U8x32(a).eq_bitmask(U8x32(b));
        assert_eq!(m, !1 & !(1 << 31));
    }

    #[test]
    fn bytes_equal_matches_reference() {
        let a: Vec<u8> = (0..200u32).map(|i| (i * 7 % 251) as u8).collect();
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 200] {
            let mut b = a[..len].to_vec();
            assert!(bytes_equal(&a[..len], &b));
            assert!(bytes_equal_reference(&a[..len], &b));
            if len > 0 {
                for flip in [0, len / 2, len - 1] {
                    b[flip] ^= 0x80;
                    assert_eq!(
                        bytes_equal(&a[..len], &b),
                        bytes_equal_reference(&a[..len], &b)
                    );
                    assert!(!bytes_equal(&a[..len], &b));
                    b[flip] ^= 0x80;
                }
            }
        }
        assert!(!bytes_equal(&a[..3], &a[..4]), "length mismatch");
    }

    #[test]
    fn mask_cmp_matches_reference_at_every_width() {
        let base: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 97)
            .collect();
        for len in 0..=64usize {
            let v = &base[..len];
            for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Gt] {
                for pivot in [0u64, 48, 96, u64::MAX] {
                    assert_eq!(
                        mask_cmp(v, cmp, pivot),
                        mask_cmp_reference(v, cmp, pivot),
                        "len={len} cmp={cmp:?} pivot={pivot}"
                    );
                }
            }
        }
    }

    #[test]
    fn mask_cmp_is_unsigned() {
        let v = [u64::MAX, 1 << 63, 1];
        assert_eq!(mask_cmp(&v, Cmp::Gt, 2), 0b011);
        assert_eq!(mask_cmp(&v, Cmp::Lt, 1 << 63), 0b100);
    }

    #[test]
    #[should_panic(expected = "64 values")]
    fn mask_cmp_rejects_oversized_blocks() {
        let v = vec![0u64; 65];
        let _ = mask_cmp(&v, Cmp::Eq, 0);
    }
}
