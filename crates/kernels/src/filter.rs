//! A filtering kernel: selection push-down on RDMA streams.
//!
//! §1: "When operating on data streams, the StRoM kernel acts as a
//! bump-in-the-wire and can execute operations such as **filtering**,
//! aggregation, partitioning, and gathering of statistics while data is
//! transmitted" — the Ibex-style SQL off-loading the paper cites \[55\].
//!
//! The kernel treats RPC WRITE payload as 8 B unsigned tuples, applies a
//! predicate, appends the qualifying tuples to a host-memory result
//! region, and finally writes an 16 B summary (tuples seen, tuples kept)
//! back to the requester. Data reduction like this is exactly what write
//! semantics enable: "the size of the response does not have to be known
//! in advance" (§5.1).

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::simd::{mask_cmp, Cmp};
use crate::traversal::Predicate;

/// The lane comparison implementing a [`Predicate`].
fn predicate_cmp(p: Predicate) -> Cmp {
    match p {
        Predicate::Equal => Cmp::Eq,
        Predicate::NotEqual => Cmp::Ne,
        Predicate::LessThan => Cmp::Lt,
        Predicate::GreaterThan => Cmp::Gt,
    }
}

/// Predicate scan over a block of up to 64 tuples: bit i of the result is
/// set iff `values[i] <predicate> operand` — the vectorized form of the
/// filter/bloom selection loops. Reference: [`predicate_mask_reference`].
///
/// # Panics
///
/// Panics if `values` holds more than 64 elements.
pub fn predicate_mask(values: &[u64], predicate: Predicate, operand: u64) -> u64 {
    mask_cmp(values, predicate_cmp(predicate), operand)
}

/// One-tuple-at-a-time reference for [`predicate_mask`], built on
/// [`Predicate::matches`].
///
/// # Panics
///
/// Panics if `values` holds more than 64 elements.
pub fn predicate_mask_reference(values: &[u64], predicate: Predicate, operand: u64) -> u64 {
    assert!(values.len() <= 64, "one mask word covers 64 values");
    let mut m = 0u64;
    for (i, &v) in values.iter().enumerate() {
        m |= u64::from(predicate.matches(v, operand)) << i;
    }
    m
}

/// Parameters of the filter kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterParams {
    /// Host-memory base of the result region.
    pub dest_addr: u64,
    /// Capacity of the result region in bytes.
    pub dest_capacity: u32,
    /// The predicate applied as `tuple <op> operand`.
    pub predicate: Predicate,
    /// Right-hand operand of the predicate.
    pub operand: u64,
    /// Requester-side address the 16 B summary is written to.
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const FILTER_PARAMS_LEN: usize = 32;

impl FilterParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(FILTER_PARAMS_LEN);
        out.extend_from_slice(&self.dest_addr.to_le_bytes());
        out.extend_from_slice(&self.dest_capacity.to_le_bytes());
        out.push(self.predicate as u8);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.operand.to_le_bytes());
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<FilterParams> {
        if buf.len() < FILTER_PARAMS_LEN {
            return None;
        }
        Some(FilterParams {
            dest_addr: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            dest_capacity: u32::from_le_bytes(buf[8..12].try_into().expect("sized")),
            predicate: Predicate::from_u8(buf[12])?,
            operand: u64::from_le_bytes(buf[16..24].try_into().expect("sized")),
            target_address: u64::from_le_bytes(buf[24..32].try_into().expect("sized")),
        })
    }
}

/// Flush granularity: qualifying tuples are staged on chip and written in
/// bursts (like the shuffle kernel's 128 B buffers).
const FLUSH_BYTES: usize = 128;

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    Active {
        qpn: Qpn,
        params: FilterParams,
    },
}

/// The filter kernel FSM.
#[derive(Debug, Default)]
pub struct FilterKernel {
    state: State,
    /// Staged qualifying tuples awaiting a flush.
    staged: Vec<u8>,
    /// Next host address to flush to.
    cursor: u64,
    /// Remaining capacity of the result region.
    remaining: u32,
    /// Partial tuple spilled across packet boundaries.
    spill: Vec<u8>,
    /// Tuples observed in the current invocation.
    seen: u64,
    /// Tuples that passed the predicate.
    kept: u64,
    /// Tuples dropped because the result region filled up (diagnostics).
    overflowed: u64,
}

impl FilterKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tuples dropped because the destination region was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Encodes the 16 B summary `(seen, kept)`.
    pub fn encode_summary(seen: u64, kept: u64) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&seen.to_le_bytes());
        out[8..16].copy_from_slice(&kept.to_le_bytes());
        out
    }

    /// Decodes a summary into `(seen, kept)`.
    pub fn decode_summary(buf: &[u8]) -> Option<(u64, u64)> {
        if buf.len() < 16 {
            return None;
        }
        Some((
            u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
        ))
    }

    fn flush(&mut self, out: &mut Vec<KernelAction>) {
        if self.staged.is_empty() {
            return;
        }
        out.push(KernelAction::DmaWrite {
            vaddr: self.cursor,
            data: Bytes::from(std::mem::take(&mut self.staged)),
        });
    }

    fn ingest(&mut self, params: &FilterParams, data: &[u8], out: &mut Vec<KernelAction>) {
        let mut input: &[u8] = data;
        let joined;
        if !self.spill.is_empty() {
            let mut j = std::mem::take(&mut self.spill);
            j.extend_from_slice(data);
            joined = j;
            input = &joined;
        }
        let whole = input.len() / 8 * 8;
        // Decode a block of tuples, evaluate the predicate as one vector
        // scan, then stage the qualifying tuples in ascending order —
        // bit-identical to the per-tuple loop (differential-tested via
        // `predicate_mask_reference`).
        let mut block = [0u64; 64];
        for run in input[..whole].chunks(64 * 8) {
            let n = run.len() / 8;
            for (slot, chunk) in block[..n].iter_mut().zip(run.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("sized"));
            }
            self.seen += n as u64;
            let mut mask = predicate_mask(&block[..n], params.predicate, params.operand);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if (self.staged.len() + 8) as u32 > self.remaining {
                    self.overflowed += 1;
                    continue;
                }
                self.staged.extend_from_slice(&block[i].to_le_bytes());
                self.kept += 1;
                if self.staged.len() >= FLUSH_BYTES {
                    let len = self.staged.len() as u64;
                    self.flush(out);
                    self.cursor += len;
                    self.remaining -= len as u32;
                }
            }
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
    }
}

impl Kernel for FilterKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::FILTER
    }

    fn name(&self) -> &'static str {
        "filter"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = FilterParams::decode(&params) else {
                    return Vec::new();
                };
                self.cursor = p.dest_addr;
                self.remaining = p.dest_capacity;
                self.staged.clear();
                self.spill.clear();
                self.seen = 0;
                self.kept = 0;
                self.state = State::Active { qpn, params: p };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                let State::Active { qpn, params } = &self.state else {
                    return Vec::new();
                };
                let (qpn, params) = (*qpn, *params);
                let mut out = Vec::new();
                self.ingest(&params, &data, &mut out);
                if last {
                    let len = self.staged.len() as u64;
                    self.flush(&mut out);
                    self.cursor += len;
                    self.remaining = self.remaining.saturating_sub(len as u32);
                    out.push(KernelAction::RoceSend {
                        qpn,
                        remote_vaddr: params.target_address,
                        data: Bytes::copy_from_slice(&Self::encode_summary(self.seen, self.kept)),
                    });
                    out.push(KernelAction::Done);
                }
                out
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured(predicate: Predicate, operand: u64) -> FilterKernel {
        let mut k = FilterKernel::new();
        let a = k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: FilterParams {
                dest_addr: 0x1000,
                dest_capacity: 1 << 20,
                predicate,
                operand,
                target_address: 0x9000,
            }
            .encode(),
        });
        assert_eq!(a, vec![KernelAction::Done]);
        k
    }

    fn feed(k: &mut FilterKernel, values: &[u64], last: bool) -> Vec<KernelAction> {
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        k.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::from(data),
            last,
        })
    }

    fn written(actions: &[KernelAction]) -> Vec<u64> {
        let mut out = Vec::new();
        for a in actions {
            if let KernelAction::DmaWrite { data, .. } = a {
                for c in data.chunks_exact(8) {
                    out.push(u64::from_le_bytes(c.try_into().unwrap()));
                }
            }
        }
        out
    }

    #[test]
    fn params_round_trip() {
        let p = FilterParams {
            dest_addr: 1,
            dest_capacity: 2,
            predicate: Predicate::LessThan,
            operand: 3,
            target_address: 4,
        };
        assert_eq!(FilterParams::decode(&p.encode()), Some(p));
        assert!(FilterParams::decode(&[0u8; 8]).is_none());
    }

    #[test]
    fn greater_than_filter_matches_reference() {
        let mut k = configured(Predicate::GreaterThan, 50);
        let values: Vec<u64> = (0..100).collect();
        let actions = feed(&mut k, &values, true);
        let got = written(&actions);
        let want: Vec<u64> = values.iter().copied().filter(|&v| v > 50).collect();
        assert_eq!(got, want);
        // Summary reports seen/kept.
        let summary = actions.iter().find_map(|a| match a {
            KernelAction::RoceSend { data, .. } => FilterKernel::decode_summary(data),
            _ => None,
        });
        assert_eq!(summary, Some((100, 49)));
    }

    #[test]
    fn flushes_are_contiguous_from_dest() {
        let mut k = configured(Predicate::NotEqual, u64::MAX);
        let values: Vec<u64> = (0..40).collect(); // All pass: 320 B.
        let actions = feed(&mut k, &values, true);
        let mut cursor = 0x1000u64;
        for a in &actions {
            if let KernelAction::DmaWrite { vaddr, data } = a {
                assert_eq!(*vaddr, cursor);
                cursor += data.len() as u64;
            }
        }
        assert_eq!(cursor, 0x1000 + 320);
    }

    #[test]
    fn capacity_overflow_is_counted() {
        let mut k = FilterKernel::new();
        k.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: FilterParams {
                dest_addr: 0,
                dest_capacity: 16, // Two tuples only.
                predicate: Predicate::NotEqual,
                operand: u64::MAX,
                target_address: 0,
            }
            .encode(),
        });
        let actions = feed(&mut k, &[1, 2, 3, 4, 5], true);
        assert_eq!(written(&actions), vec![1, 2]);
        assert_eq!(k.overflowed(), 3);
    }

    #[test]
    fn split_tuples_across_packets() {
        let mut k = configured(Predicate::Equal, 7);
        let data: Vec<u8> = [7u64, 8, 7, 9, 7]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let mut all = Vec::new();
        let mut fed = 0;
        for chunk in data.chunks(11) {
            fed += chunk.len();
            let actions = k.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(chunk),
                last: fed == data.len(),
            });
            all.extend(actions);
        }
        assert_eq!(written(&all), vec![7, 7, 7]);
    }

    #[test]
    fn data_before_configuration_is_ignored() {
        let mut k = FilterKernel::new();
        assert!(feed(&mut k, &[1, 2, 3], true).is_empty());
    }

    #[test]
    fn predicate_mask_matches_reference_at_every_width() {
        let values: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37) % 50).collect();
        for len in 0..=64usize {
            for pred in [
                Predicate::Equal,
                Predicate::NotEqual,
                Predicate::LessThan,
                Predicate::GreaterThan,
            ] {
                for operand in [0u64, 25, 49, u64::MAX] {
                    assert_eq!(
                        predicate_mask(&values[..len], pred, operand),
                        predicate_mask_reference(&values[..len], pred, operand),
                        "len={len} pred={pred:?} operand={operand}"
                    );
                }
            }
        }
    }
}
