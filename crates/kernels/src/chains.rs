//! The canonical kernel chains: pre-composed on-NIC pipelines.
//!
//! §8's outlook — "more complex processing pipelines can be built by
//! **chaining kernels**" — realized with the
//! [`KernelChain`](crate::framework::KernelChain) combinator. Two
//! pipelines exercise both composition styles:
//!
//! - [`filter_agg_hll`]: *filter → aggregate → HLL*. The filter's
//!   qualifying-tuple bursts are diverted into the aggregate stage
//!   ([`StageRoute::CaptureDmaWrites`]) instead of host memory; the
//!   aggregate taps its input through to the HLL stage
//!   ([`StageRoute::Tap`]) while folding count/sum/min/max. One pass over
//!   the wire yields three result records (filter summary, aggregate
//!   record, HLL snapshot) on the requester.
//! - [`crcverify_shuffle`]: *CRC-verify → shuffle*. The verify stage
//!   forwards payload cut-through ([`StageRoute::Handoff`]) and withholds
//!   the 8 B trailer; the shuffle stage radix-partitions the verified
//!   tuples into host memory. A CRC mismatch raises the in-band
//!   [`ERR_INCONSISTENT`](crate::framework::ERR_INCONSISTENT) sentinel and
//!   the chain starves the shuffle stage — corrupted tuples never land.

use bytes::Bytes;

use strom_wire::opcode::RpcOpCode;

use crate::aggregate::{AggregateKernel, AggregateParams};
use crate::crc_verify::{CrcVerifyKernel, CrcVerifyParams};
use crate::filter::{FilterKernel, FilterParams};
use crate::framework::{ChainParams, KernelChain, StageRoute};
use crate::hll_kernel::HllKernel;
use crate::shuffle::{ShuffleKernel, ShuffleParams};

/// Builds the filter → aggregate → HLL chain (undeployed, unconfigured).
pub fn filter_agg_hll() -> KernelChain {
    KernelChain::new(
        RpcOpCode::CHAIN_FILTER_AGG_HLL,
        vec![
            (Box::new(FilterKernel::new()), StageRoute::CaptureDmaWrites),
            (Box::new(AggregateKernel::new()), StageRoute::Tap),
            (Box::new(HllKernel::new()), StageRoute::Handoff),
        ],
    )
}

/// Encodes the invocation parameters for [`filter_agg_hll`].
///
/// The filter's `dest_addr`/`dest_capacity` govern only burst sizing —
/// qualifying tuples flow to the aggregate stage, not host memory — but
/// capacity still bounds how many tuples pass (tuples beyond it are
/// dropped and counted as overflow, same as the standalone kernel).
pub fn filter_agg_hll_params(
    filter: &FilterParams,
    aggregate: &AggregateParams,
    hll_target: u64,
) -> Bytes {
    ChainParams {
        stages: vec![
            filter.encode(),
            aggregate.encode(),
            HllKernel::stream_params(hll_target),
        ],
    }
    .encode()
}

/// Builds the CRC-verify → shuffle chain (undeployed, unconfigured).
pub fn crcverify_shuffle() -> KernelChain {
    KernelChain::new(
        RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
        vec![
            (Box::new(CrcVerifyKernel::new()), StageRoute::Handoff),
            (Box::new(ShuffleKernel::new()), StageRoute::Handoff),
        ],
    )
}

/// Encodes the invocation parameters for [`crcverify_shuffle`].
pub fn crcverify_shuffle_params(verify: &CrcVerifyParams, shuffle: &ShuffleParams) -> Bytes {
    ChainParams {
        stages: vec![verify.encode(), shuffle.encode()],
    }
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::crc_verify::append_trailer;
    use crate::framework::{decode_error, Kernel, KernelAction, KernelEvent, ERR_INCONSISTENT};
    use crate::hll_kernel::HllKernel as Hll;
    use crate::shuffle::encode_histogram;
    use crate::traversal::Predicate;

    fn tuples(values: &[u64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Drives a chain standalone (no fabric): configure, stream, close.
    fn drive(
        chain: &mut KernelChain,
        params: Bytes,
        stream: &[u8],
        chunk: usize,
    ) -> Vec<KernelAction> {
        let mut all = chain.on_event(KernelEvent::Invoke { qpn: 5, params });
        // Answer any configure-time DMA reads with zeroed bytes only if a
        // test needs it; these chains configure without DMA.
        let mut fed = 0;
        for c in stream.chunks(chunk.max(1)) {
            fed += c.len();
            all.extend(chain.on_event(KernelEvent::RoceData {
                qpn: 5,
                data: Bytes::copy_from_slice(c),
                last: fed == stream.len(),
            }));
        }
        if stream.is_empty() {
            all.extend(chain.on_event(KernelEvent::RoceData {
                qpn: 5,
                data: Bytes::new(),
                last: true,
            }));
        }
        all
    }

    fn sends_at(actions: &[KernelAction], vaddr: u64) -> Vec<Bytes> {
        actions
            .iter()
            .filter_map(|a| match a {
                KernelAction::RoceSend {
                    remote_vaddr, data, ..
                } if *remote_vaddr == vaddr => Some(data.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn filter_agg_hll_produces_three_records() {
        let mut chain = filter_agg_hll();
        assert_eq!(chain.rpc_op(), RpcOpCode::CHAIN_FILTER_AGG_HLL);
        let params = filter_agg_hll_params(
            &FilterParams {
                dest_addr: 0x1000,
                dest_capacity: 1 << 20,
                predicate: Predicate::GreaterThan,
                operand: 100,
                target_address: 0xA000,
            },
            &AggregateParams {
                target_address: 0xB000,
            },
            0xC000,
        );
        // 0..=200 with duplicates; > 100 passes.
        let values: Vec<u64> = (0..2000u64).map(|i| i % 201).collect();
        let actions = drive(&mut chain, params, &tuples(&values), 1440);

        let expect: Vec<u64> = values.iter().copied().filter(|&v| v > 100).collect();
        // Filter summary.
        let fs = sends_at(&actions, 0xA000);
        assert_eq!(
            crate::filter::FilterKernel::decode_summary(&fs[0]),
            Some((2000, expect.len() as u64))
        );
        // Aggregate record covers exactly the filtered tuples.
        let ag = sends_at(&actions, 0xB000);
        assert_eq!(Aggregate::decode(&ag[0]), Some(Aggregate::of(&expect)));
        // HLL snapshot: 100 distinct survivors (101..=200).
        let hs = sends_at(&actions, 0xC000);
        let (est, items) = Hll::decode_snapshot(&hs[0]).unwrap();
        assert_eq!(items, expect.len() as u64);
        assert!((est - 100.0).abs() / 100.0 < 0.05, "estimate = {est}");
        // No filter tuples leak to host memory (they were captured).
        assert!(
            actions
                .iter()
                .all(|a| !matches!(a, KernelAction::DmaWrite { .. })),
            "capture route must divert every burst"
        );
        assert_eq!(*actions.last().unwrap(), KernelAction::Done);
        assert!(!chain.failed());
    }

    #[test]
    fn crcverify_shuffle_partitions_only_verified_data() {
        let mut chain = crcverify_shuffle();
        let histogram = encode_histogram(&[(0x10_000, 4096), (0x20_000, 4096)]);
        let params = crcverify_shuffle_params(
            &CrcVerifyParams {
                target_address: 0xD000,
            },
            &ShuffleParams {
                histogram_addr: 0x500,
                num_partitions: 2,
            },
        );
        let values: Vec<u64> = (0..64u64).collect();
        let stream = append_trailer(&tuples(&values));

        let mut all = chain.on_event(KernelEvent::Invoke { qpn: 5, params });
        // The shuffle stage DMA-reads its histogram: tag is namespaced to
        // stage 1.
        let read_tag = all
            .iter()
            .find_map(|a| match a {
                KernelAction::DmaRead {
                    tag, vaddr: 0x500, ..
                } => Some(*tag),
                _ => None,
            })
            .expect("histogram read");
        assert_eq!(read_tag >> crate::framework::STAGE_TAG_SHIFT, 1);
        all.extend(chain.on_event(KernelEvent::DmaData {
            tag: read_tag,
            data: Bytes::from(histogram),
        }));
        assert!(all.contains(&KernelAction::Done), "chain configured");
        let mut fed = 0;
        for c in stream.chunks(96) {
            fed += c.len();
            all.extend(chain.on_event(KernelEvent::RoceData {
                qpn: 5,
                data: Bytes::copy_from_slice(c),
                last: fed == stream.len(),
            }));
        }
        // Verdict reports the payload CRC; partitions land in both banks.
        let vd = sends_at(&all, 0xD000);
        let (crc, len) = crate::crc_verify::CrcVerifyKernel::decode_verdict(&vd[0]).unwrap();
        assert_eq!(len, 64 * 8);
        assert_eq!(crc, crate::crc64::crc64(&tuples(&values)));
        let mut even = Vec::new();
        let mut odd = Vec::new();
        for a in &all {
            if let KernelAction::DmaWrite { vaddr, data } = a {
                let bank = if *vaddr >= 0x20_000 {
                    &mut odd
                } else {
                    &mut even
                };
                for c in data.chunks_exact(8) {
                    bank.push(u64::from_le_bytes(c.try_into().unwrap()));
                }
            }
        }
        assert_eq!(even, (0..64).filter(|v| v % 2 == 0).collect::<Vec<u64>>());
        assert_eq!(odd, (0..64).filter(|v| v % 2 == 1).collect::<Vec<u64>>());
        assert!(!chain.failed());
    }

    #[test]
    fn corrupted_stream_starves_the_shuffle_stage() {
        let mut chain = crcverify_shuffle();
        let histogram = encode_histogram(&[(0x10_000, 65536)]);
        let params = crcverify_shuffle_params(
            &CrcVerifyParams {
                target_address: 0xD000,
            },
            &ShuffleParams {
                histogram_addr: 0x500,
                num_partitions: 1,
            },
        );
        let values: Vec<u64> = (0..512u64).collect();
        let mut stream = append_trailer(&tuples(&values));
        let n = stream.len();
        stream[n - 3] ^= 0xFF; // Corrupt the trailer.

        let mut all = chain.on_event(KernelEvent::Invoke { qpn: 5, params });
        let read_tag = all
            .iter()
            .find_map(|a| match a {
                KernelAction::DmaRead { tag, .. } => Some(*tag),
                _ => None,
            })
            .unwrap();
        all.extend(chain.on_event(KernelEvent::DmaData {
            tag: read_tag,
            data: Bytes::from(histogram),
        }));
        let mut fed = 0;
        for c in stream.chunks(100) {
            fed += c.len();
            all.extend(chain.on_event(KernelEvent::RoceData {
                qpn: 5,
                data: Bytes::copy_from_slice(c),
                last: fed == stream.len(),
            }));
        }
        // Sentinel reaches the requester, the chain latched failure, and
        // the chain still completed (final Done) without wedging.
        let vd = sends_at(&all, 0xD000);
        let word = u64::from_le_bytes(vd[0][..].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_INCONSISTENT));
        assert!(chain.failed());
        assert_eq!(*all.last().unwrap(), KernelAction::Done);
        // Note: cut-through means tuples released *before* the trailer
        // check may already have been partitioned — exactly the semantics
        // of a wire pipeline; the requester knows from the sentinel that
        // the batch must be discarded/retried.
    }

    #[test]
    fn empty_payload_through_filter_agg_hll() {
        let mut chain = filter_agg_hll();
        let params = filter_agg_hll_params(
            &FilterParams {
                dest_addr: 0,
                dest_capacity: 1024,
                predicate: Predicate::NotEqual,
                operand: 0,
                target_address: 0xA000,
            },
            &AggregateParams {
                target_address: 0xB000,
            },
            0xC000,
        );
        let actions = drive(&mut chain, params, &[], 64);
        assert_eq!(
            crate::filter::FilterKernel::decode_summary(&sends_at(&actions, 0xA000)[0]),
            Some((0, 0))
        );
        let agg = Aggregate::decode(&sends_at(&actions, 0xB000)[0]).unwrap();
        assert_eq!(agg.count, 0);
        let (est, items) = Hll::decode_snapshot(&sends_at(&actions, 0xC000)[0]).unwrap();
        assert_eq!((est, items), (0.0, 0));
        assert_eq!(*actions.last().unwrap(), KernelAction::Done);
    }
}
