//! The KV PUT/INSERT kernel: versioned chained-hash-table updates
//! served on the NIC, fed by RDMA RPC WRITE.
//!
//! The GET side of the serving tier ([`crate::get`]) only reads; this
//! kernel is its write path. A client streams one request blob per PUT
//! through the RDMA RPC WRITE verb (§5.1 — the payload rides
//! `RPC WRITE First/Middle/Last` packets straight into the kernel, no
//! host round trip), and the kernel walks the chained entry like the GET
//! kernel does, then either
//!
//! - **updates** the matching bucket in place: rewrites the value slot
//!   and bumps the bucket's 8 B version counter, or
//! - **inserts** the key at the chain tail: into a free bucket, or into
//!   a freshly allocated overflow entry, taking the value slot (and
//!   entry) from arenas the host granted at configuration time — the
//!   kernel owns the arena cursors as hardware registers, and the
//!   fabric's per-op-code serialization makes allocation race-free.
//!
//! Every successful PUT is acknowledged with the entry's **new version**
//! (an 8 B RDMA WRITE into the requester's ack slot); failures answer
//! with an error word instead. Version counters make concurrent PUTs
//! detectable end-to-end: the server-side counter equals the number of
//! acknowledged updates, so lost or duplicated PUTs show up as a counter
//! mismatch — the serving tier's exactly-once audit.
//!
//! Request blob layout (streamed, any MTU segmentation):
//!
//! ```text
//! [0..8)   key
//! [8..16)  primary entry address (the client computed the hash)
//! [16..24) requester-side ack address
//! [24..28) value length (must equal the configured slot size)
//! [28..)   value bytes
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{
    error_word, Kernel, KernelAction, KernelEvent, ERR_BAD_PARAMS, ERR_NO_SPACE,
};
use crate::layouts::{chained_layout, KvStore, ELEMENT_SIZE};

/// Arena grant + slot geometry the host configures the kernel with
/// (one local RPC invoke at deployment time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutConfig {
    /// Next free value slot.
    pub value_arena_next: u64,
    /// End of the value arena (exclusive).
    pub value_arena_end: u64,
    /// Next free overflow entry.
    pub entry_arena_next: u64,
    /// End of the overflow entry arena (exclusive).
    pub entry_arena_end: u64,
    /// Fixed value slot size; every PUT must carry exactly this many
    /// value bytes.
    pub value_size: u32,
}

/// Encoded configuration length in bytes.
pub const PUT_CONFIG_LEN: usize = 36;

/// Streamed request header length in bytes (value bytes follow).
pub const PUT_HEADER_LEN: usize = 28;

impl PutConfig {
    /// The grant covering a [`KvStore`]'s spare arenas.
    pub fn for_store(kv: &KvStore) -> PutConfig {
        PutConfig {
            value_arena_next: kv.value_arena_next,
            value_arena_end: kv.value_arena_end,
            entry_arena_next: kv.entry_arena_next,
            entry_arena_end: kv.entry_arena_end,
            value_size: kv.table.value_size,
        }
    }

    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(PUT_CONFIG_LEN);
        out.extend_from_slice(&self.value_arena_next.to_le_bytes());
        out.extend_from_slice(&self.value_arena_end.to_le_bytes());
        out.extend_from_slice(&self.entry_arena_next.to_le_bytes());
        out.extend_from_slice(&self.entry_arena_end.to_le_bytes());
        out.extend_from_slice(&self.value_size.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<PutConfig> {
        if buf.len() < PUT_CONFIG_LEN {
            return None;
        }
        Some(PutConfig {
            value_arena_next: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            value_arena_end: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
            entry_arena_next: u64::from_le_bytes(buf[16..24].try_into().expect("sized")),
            entry_arena_end: u64::from_le_bytes(buf[24..32].try_into().expect("sized")),
            value_size: u32::from_le_bytes(buf[32..36].try_into().expect("sized")),
        })
    }
}

/// Encodes one PUT request blob (client side).
pub fn encode_put_request(key: u64, entry_addr: u64, ack_addr: u64, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(PUT_HEADER_LEN + value.len());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&entry_addr.to_le_bytes());
    out.extend_from_slice(&ack_addr.to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    out
}

/// One decoded, fully received request.
#[derive(Debug)]
struct PutRequest {
    qpn: Qpn,
    key: u64,
    entry_addr: u64,
    ack_addr: u64,
    value: Vec<u8>,
}

/// The in-flight chain walk.
#[derive(Debug)]
struct Active {
    req: PutRequest,
    /// Entry the outstanding DMA read targets.
    cur_entry: u64,
    hops: u32,
}

/// DMA tag for entry reads.
const TAG_ENTRY: u32 = 1;
/// Chain-walk bound (corrupted-table cycle guard).
const MAX_HOPS: u32 = 1024;

/// The PUT/INSERT kernel.
#[derive(Debug, Default)]
pub struct PutKernel {
    cfg: Option<PutConfig>,
    /// Per-QP reassembly of streamed request blobs (RC keeps each QP's
    /// stream ordered; different QPs interleave freely).
    partial: BTreeMap<Qpn, Vec<u8>>,
    /// Fully received requests waiting for the walk engine.
    pending: VecDeque<PutRequest>,
    active: Option<Active>,
    /// Successful in-place updates.
    pub updates: u64,
    /// Successful inserts (fresh bucket or fresh overflow entry).
    pub inserts: u64,
    /// Requests answered with an error word.
    pub errors: u64,
}

impl PutKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Successful PUTs of either kind.
    pub fn applied(&self) -> u64 {
        self.updates + self.inserts
    }

    /// Starts the next pending request, if the walk engine is idle.
    fn start_next(&mut self) -> Vec<KernelAction> {
        if self.active.is_some() {
            return Vec::new();
        }
        let Some(req) = self.pending.pop_front() else {
            return Vec::new();
        };
        let entry = req.entry_addr;
        self.active = Some(Active {
            req,
            cur_entry: entry,
            hops: 0,
        });
        vec![KernelAction::DmaRead {
            tag: TAG_ENTRY,
            vaddr: entry,
            len: ELEMENT_SIZE as u32,
        }]
    }

    /// Finishes the active request with an ack (or error) word, then
    /// chains the next pending request.
    fn finish(&mut self, qpn: Qpn, ack_addr: u64, word: [u8; 8]) -> Vec<KernelAction> {
        self.active = None;
        let mut actions = vec![
            KernelAction::RoceSend {
                qpn,
                remote_vaddr: ack_addr,
                data: Bytes::copy_from_slice(&word),
            },
            KernelAction::Done,
        ];
        actions.extend(self.start_next());
        actions
    }

    /// Handles a fully-read entry for the active request.
    fn on_entry(&mut self, data: Bytes) -> Vec<KernelAction> {
        let Some(active) = self.active.take() else {
            return Vec::new();
        };
        let Active {
            req,
            cur_entry,
            hops,
        } = active;
        let cfg = self.cfg.expect("configured before first request");
        let mut buf = data.to_vec();

        // Update in place: a bucket already holds the key.
        for b in 0..chained_layout::BUCKETS {
            let off = chained_layout::key_off(b);
            let k = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
            if k != 0 && k == req.key {
                let ptr = u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("sized"));
                let voff = chained_layout::version_off(b);
                let version =
                    u64::from_le_bytes(buf[voff..voff + 8].try_into().expect("sized")) + 1;
                buf[voff..voff + 8].copy_from_slice(&version.to_le_bytes());
                self.updates += 1;
                let mut actions = vec![
                    KernelAction::DmaWrite {
                        vaddr: ptr,
                        data: Bytes::from(req.value),
                    },
                    KernelAction::DmaWrite {
                        vaddr: cur_entry,
                        data: Bytes::from(buf),
                    },
                ];
                actions.extend(self.finish(req.qpn, req.ack_addr, version.to_le_bytes()));
                return actions;
            }
        }

        // Keep walking the chain.
        let noff = chained_layout::next_off();
        let next = u64::from_le_bytes(buf[noff..noff + 8].try_into().expect("sized"));
        if next != 0 && hops < MAX_HOPS {
            self.active = Some(Active {
                req,
                cur_entry: next,
                hops: hops + 1,
            });
            return vec![KernelAction::DmaRead {
                tag: TAG_ENTRY,
                vaddr: next,
                len: ELEMENT_SIZE as u32,
            }];
        }

        // Chain tail: insert. Take a value slot from the arena.
        let cfg_ref = self.cfg.as_mut().expect("configured");
        if cfg_ref.value_arena_next + u64::from(cfg.value_size) > cfg_ref.value_arena_end {
            self.errors += 1;
            return self.finish(req.qpn, req.ack_addr, error_word(ERR_NO_SPACE));
        }
        let value_addr = cfg_ref.value_arena_next;
        // A free bucket in the tail entry takes the key directly.
        for b in 0..chained_layout::BUCKETS {
            let off = chained_layout::key_off(b);
            let k = u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
            if k == 0 {
                self.cfg.as_mut().expect("configured").value_arena_next +=
                    u64::from(cfg.value_size);
                buf[off..off + 8].copy_from_slice(&req.key.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&value_addr.to_le_bytes());
                buf[off + 16..off + 20].copy_from_slice(&cfg.value_size.to_le_bytes());
                let voff = chained_layout::version_off(b);
                buf[voff..voff + 8].copy_from_slice(&1u64.to_le_bytes());
                self.inserts += 1;
                let mut actions = vec![
                    KernelAction::DmaWrite {
                        vaddr: value_addr,
                        data: Bytes::from(req.value),
                    },
                    KernelAction::DmaWrite {
                        vaddr: cur_entry,
                        data: Bytes::from(buf),
                    },
                ];
                actions.extend(self.finish(req.qpn, req.ack_addr, 1u64.to_le_bytes()));
                return actions;
            }
        }
        // Both buckets taken: allocate a fresh overflow entry.
        let cfg_ref = self.cfg.as_mut().expect("configured");
        if cfg_ref.entry_arena_next + ELEMENT_SIZE > cfg_ref.entry_arena_end {
            self.errors += 1;
            return self.finish(req.qpn, req.ack_addr, error_word(ERR_NO_SPACE));
        }
        let fresh = cfg_ref.entry_arena_next;
        cfg_ref.entry_arena_next += ELEMENT_SIZE;
        cfg_ref.value_arena_next += u64::from(cfg.value_size);
        let mut fresh_buf = vec![0u8; ELEMENT_SIZE as usize];
        let off = chained_layout::key_off(0);
        fresh_buf[off..off + 8].copy_from_slice(&req.key.to_le_bytes());
        fresh_buf[off + 8..off + 16].copy_from_slice(&value_addr.to_le_bytes());
        fresh_buf[off + 16..off + 20].copy_from_slice(&cfg.value_size.to_le_bytes());
        let voff = chained_layout::version_off(0);
        fresh_buf[voff..voff + 8].copy_from_slice(&1u64.to_le_bytes());
        buf[noff..noff + 8].copy_from_slice(&fresh.to_le_bytes());
        self.inserts += 1;
        let mut actions = vec![
            KernelAction::DmaWrite {
                vaddr: value_addr,
                data: Bytes::from(req.value),
            },
            KernelAction::DmaWrite {
                vaddr: fresh,
                data: Bytes::from(fresh_buf),
            },
            // The tail's next pointer goes live last, so a concurrent
            // GET walk never follows a pointer into a half-built entry.
            KernelAction::DmaWrite {
                vaddr: cur_entry,
                data: Bytes::from(buf),
            },
        ];
        actions.extend(self.finish(req.qpn, req.ack_addr, 1u64.to_le_bytes()));
        actions
    }

    /// Decodes a fully-received blob into a request, or an error ack.
    fn admit(&mut self, qpn: Qpn, blob: Vec<u8>) -> Result<PutRequest, Vec<KernelAction>> {
        let bad = |this: &mut Self| {
            this.errors += 1;
            // Malformed blob: without a decodable ack address there is
            // nowhere to answer; drop it (the client's timeout owns it).
            Err(Vec::new())
        };
        if blob.len() < PUT_HEADER_LEN {
            return bad(self);
        }
        let key = u64::from_le_bytes(blob[0..8].try_into().expect("sized"));
        let entry_addr = u64::from_le_bytes(blob[8..16].try_into().expect("sized"));
        let ack_addr = u64::from_le_bytes(blob[16..24].try_into().expect("sized"));
        let value_len = u32::from_le_bytes(blob[24..28].try_into().expect("sized")) as usize;
        let Some(cfg) = self.cfg else {
            return bad(self);
        };
        if blob.len() != PUT_HEADER_LEN + value_len
            || value_len != cfg.value_size as usize
            || key == 0
            || entry_addr == 0
        {
            self.errors += 1;
            return Err(vec![KernelAction::RoceSend {
                qpn,
                remote_vaddr: ack_addr,
                data: Bytes::copy_from_slice(&error_word(ERR_BAD_PARAMS)),
            }]);
        }
        Ok(PutRequest {
            qpn,
            key,
            entry_addr,
            ack_addr,
            value: blob[PUT_HEADER_LEN..].to_vec(),
        })
    }
}

impl Kernel for PutKernel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::PUT
    }

    fn name(&self) -> &'static str {
        "put"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            // Configuration: a local RPC invoke carrying the arena grant.
            KernelEvent::Invoke { params, .. } => {
                self.cfg = PutConfig::decode(&params);
                vec![KernelAction::Done]
            }
            // Streamed request payload (RDMA RPC WRITE).
            KernelEvent::RoceData { qpn, data, last } => {
                self.partial
                    .entry(qpn)
                    .or_default()
                    .extend_from_slice(&data);
                if !last {
                    return Vec::new();
                }
                let blob = self.partial.remove(&qpn).unwrap_or_default();
                match self.admit(qpn, blob) {
                    Ok(req) => {
                        self.pending.push_back(req);
                        self.start_next()
                    }
                    Err(actions) => actions,
                }
            }
            KernelEvent::DmaData { tag, data } if tag == TAG_ENTRY => self.on_entry(data),
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::decode_error;
    use crate::layouts::{build_kv_store, versioned_value_pattern, KvStore};
    use strom_mem::{HostMemory, HUGE_PAGE_SIZE};

    /// Feeds events and executes DMA actions against host memory until
    /// the kernel goes quiet; returns every RoceSend it emitted.
    fn pump(
        kernel: &mut PutKernel,
        mem: &mut HostMemory,
        mut actions: Vec<KernelAction>,
    ) -> Vec<(u64, Bytes)> {
        let mut sends = Vec::new();
        loop {
            let mut next = Vec::new();
            for a in actions {
                match a {
                    KernelAction::DmaRead { tag, vaddr, len } => {
                        let data = Bytes::from(mem.read(vaddr, len as usize));
                        next.extend(kernel.on_event(KernelEvent::DmaData { tag, data }));
                    }
                    KernelAction::DmaWrite { vaddr, data } => mem.write(vaddr, &data),
                    KernelAction::RoceSend {
                        remote_vaddr, data, ..
                    } => sends.push((remote_vaddr, data)),
                    KernelAction::Done | KernelAction::Forward { .. } => {}
                }
            }
            if next.is_empty() {
                return sends;
            }
            actions = next;
        }
    }

    fn put(
        kernel: &mut PutKernel,
        mem: &mut HostMemory,
        kv: &KvStore,
        qpn: Qpn,
        key: u64,
        value: &[u8],
    ) -> Vec<(u64, Bytes)> {
        let blob = encode_put_request(key, kv.entry_addr(key), 0x9000, value);
        // Stream in two chunks to exercise reassembly.
        let mid = blob.len() / 2;
        let mut actions = kernel.on_event(KernelEvent::RoceData {
            qpn,
            data: Bytes::copy_from_slice(&blob[..mid]),
            last: false,
        });
        actions.extend(kernel.on_event(KernelEvent::RoceData {
            qpn,
            data: Bytes::copy_from_slice(&blob[mid..]),
            last: true,
        }));
        pump(kernel, mem, actions)
    }

    fn setup(value_size: u32, keys: &[u64], spare: u64) -> (HostMemory, KvStore, PutKernel) {
        let mut m = HostMemory::new();
        let (base, _) = m.pin(HUGE_PAGE_SIZE).unwrap();
        let kv = build_kv_store(&mut m, base, 4, keys, value_size, spare);
        let mut k = PutKernel::new();
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 0,
            params: PutConfig::for_store(&kv).encode(),
        });
        assert_eq!(actions, vec![KernelAction::Done]);
        (m, kv, k)
    }

    #[test]
    fn config_round_trip() {
        let c = PutConfig {
            value_arena_next: 1,
            value_arena_end: 2,
            entry_arena_next: 3,
            entry_arena_end: 4,
            value_size: 5,
        };
        assert_eq!(PutConfig::decode(&c.encode()), Some(c));
        assert!(PutConfig::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn update_bumps_the_version_and_rewrites_the_value() {
        let keys: Vec<u64> = (1..=10).collect();
        let (mut m, kv, mut k) = setup(32, &keys, 4);
        for round in 1..=3u64 {
            for &key in &keys {
                let val = versioned_value_pattern(key, round, 32);
                let sends = put(&mut k, &mut m, &kv, 7, key, &val);
                assert_eq!(sends.len(), 1);
                assert_eq!(sends[0].0, 0x9000);
                let ack = u64::from_le_bytes(sends[0].1[..8].try_into().unwrap());
                assert_eq!(ack, round, "each PUT must bump the version by one");
            }
        }
        for &key in &keys {
            let (version, ptr) = kv.lookup(&mut m, key).unwrap();
            assert_eq!(version, 3);
            assert_eq!(m.read(ptr, 32), versioned_value_pattern(key, 3, 32));
        }
        assert_eq!(k.updates, 30);
        assert_eq!(k.inserts, 0);
    }

    #[test]
    fn insert_places_new_keys_reachably() {
        let keys: Vec<u64> = (1..=6).collect();
        let (mut m, kv, mut k) = setup(16, &keys, 8);
        for new_key in 100..=104u64 {
            let val = versioned_value_pattern(new_key, 1, 16);
            let sends = put(&mut k, &mut m, &kv, 3, new_key, &val);
            let ack = u64::from_le_bytes(sends[0].1[..8].try_into().unwrap());
            assert_eq!(ack, 1, "fresh insert starts at version 1");
            let (version, ptr) = kv.lookup(&mut m, new_key).expect("inserted key reachable");
            assert_eq!(version, 1);
            assert_eq!(m.read(ptr, 16), val);
        }
        assert_eq!(k.inserts, 5);
        // Old keys are untouched.
        for &key in &keys {
            let (version, ptr) = kv.lookup(&mut m, key).unwrap();
            assert_eq!(version, 0);
            assert_eq!(m.read(ptr, 16), versioned_value_pattern(key, 0, 16));
        }
    }

    #[test]
    fn arena_exhaustion_reports_no_space() {
        let keys: Vec<u64> = (1..=4).collect();
        let (mut m, kv, mut k) = setup(16, &keys, 1);
        let a = put(
            &mut k,
            &mut m,
            &kv,
            1,
            50,
            &versioned_value_pattern(50, 1, 16),
        );
        assert_eq!(u64::from_le_bytes(a[0].1[..8].try_into().unwrap()), 1);
        // The single spare slot is gone: the next insert must fail
        // cleanly with ERR_NO_SPACE, and never corrupt the table.
        let b = put(
            &mut k,
            &mut m,
            &kv,
            1,
            51,
            &versioned_value_pattern(51, 1, 16),
        );
        let word = u64::from_le_bytes(b[0].1[..8].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_NO_SPACE));
        assert_eq!(kv.lookup(&mut m, 51), None);
        assert_eq!(k.errors, 1);
    }

    #[test]
    fn wrong_value_length_is_rejected() {
        let keys = [1u64, 2];
        let (mut m, kv, mut k) = setup(32, &keys, 2);
        let sends = put(&mut k, &mut m, &kv, 1, 1, &[0u8; 16]);
        let word = u64::from_le_bytes(sends[0].1[..8].try_into().unwrap());
        assert_eq!(decode_error(word), Some(ERR_BAD_PARAMS));
        let (version, _) = kv.lookup(&mut m, 1).unwrap();
        assert_eq!(version, 0, "rejected PUT must not touch the entry");
    }

    #[test]
    fn interleaved_streams_from_two_qps_reassemble_independently() {
        let keys: Vec<u64> = (1..=8).collect();
        let (mut m, kv, mut k) = setup(24, &keys, 2);
        let blob_a = encode_put_request(
            3,
            kv.entry_addr(3),
            0xA000,
            &versioned_value_pattern(3, 1, 24),
        );
        let blob_b = encode_put_request(
            5,
            kv.entry_addr(5),
            0xB000,
            &versioned_value_pattern(5, 1, 24),
        );
        // Interleave: A first half, B whole, A second half.
        let mid = blob_a.len() / 2;
        let mut actions = k.on_event(KernelEvent::RoceData {
            qpn: 10,
            data: Bytes::copy_from_slice(&blob_a[..mid]),
            last: false,
        });
        actions.extend(k.on_event(KernelEvent::RoceData {
            qpn: 20,
            data: Bytes::copy_from_slice(&blob_b),
            last: true,
        }));
        actions.extend(k.on_event(KernelEvent::RoceData {
            qpn: 10,
            data: Bytes::copy_from_slice(&blob_a[mid..]),
            last: true,
        }));
        let sends = pump(&mut k, &mut m, actions);
        // Both PUTs applied (order: B completed first, then A).
        assert_eq!(sends.len(), 2);
        assert_eq!(sends[0].0, 0xB000);
        assert_eq!(sends[1].0, 0xA000);
        assert_eq!(kv.lookup(&mut m, 3).unwrap().0, 1);
        assert_eq!(kv.lookup(&mut m, 5).unwrap().0, 1);
        assert_eq!(k.applied(), 2);
    }
}
