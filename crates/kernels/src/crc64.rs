//! CRC64 (ECMA-182), the checksum of the consistency kernel.
//!
//! §6.3 offloads a CRC64 data-consistency check to the NIC. The paper
//! notes (footnote 8) that CRC64 "is inherently sequential" with no SIMD
//! or CPU instruction support — which is why the software baseline pays up
//! to 40 % overhead while the FPGA pipeline hides it. This is a real,
//! table-driven implementation used by both the kernel and the software
//! baseline.
//!
//! The hot loop is **slice-by-16**: sixteen composed 256-entry tables
//! consume sixteen input bytes per step. That does not contradict the
//! paper's "inherently sequential" observation — the recurrence is still
//! serial across blocks, there is simply more table lookup per step; the
//! simulator's consistency-kernel and software-baseline experiments hash
//! megabytes, so the constant factor matters. The byte-at-a-time loop is
//! kept as [`crc64_reference`] for differential tests and the `wire_micro`
//! bench.
//!
//! [`crc64_parallel`] goes one step further for large one-shot digests:
//! it runs four *independent* slice-by-16 recurrences over four quarters
//! of the input — breaking the serial dependency chain the paper's
//! footnote 8 describes — and stitches the four lane digests together
//! with a GF(2) "advance by N zero bytes" operator ([`crc64_combine`]),
//! the zlib `crc32_combine` construction lifted to the 64-bit MSB-first
//! polynomial. It is dispatched through [`crate::simd`] and
//! differential-tested against [`crc64_reference`].

use crate::simd_dispatch;

/// The ECMA-182 polynomial in normal (MSB-first) form.
pub const POLY_ECMA_182: u64 = 0x42F0_E1EB_A9EA_3693;

/// Slice-by-16 tables for the MSB-first polynomial. `t[0]` is the
/// classic byte table; `t[k][b]` is the CRC contribution of byte `b`
/// followed by `k` zero bytes.
fn tables() -> &'static [[u64; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<[[u64; 256]; 16]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u64; 256]; 16]);
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY_ECMA_182
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        for k in 1..16 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev << 8) ^ t[0][(prev >> 56) as usize];
            }
        }
        t
    })
}

/// One slice-by-16 step: folds a 16-byte block into `crc`.
#[inline(always)]
fn step16(t: &[[u64; 256]; 16], crc: u64, c: &[u8]) -> u64 {
    let x = crc ^ u64::from_be_bytes(c[0..8].try_into().expect("sized"));
    t[15][(x >> 56) as usize]
        ^ t[14][((x >> 48) & 0xff) as usize]
        ^ t[13][((x >> 40) & 0xff) as usize]
        ^ t[12][((x >> 32) & 0xff) as usize]
        ^ t[11][((x >> 24) & 0xff) as usize]
        ^ t[10][((x >> 16) & 0xff) as usize]
        ^ t[9][((x >> 8) & 0xff) as usize]
        ^ t[8][(x & 0xff) as usize]
        ^ t[7][c[8] as usize]
        ^ t[6][c[9] as usize]
        ^ t[5][c[10] as usize]
        ^ t[4][c[11] as usize]
        ^ t[3][c[12] as usize]
        ^ t[2][c[13] as usize]
        ^ t[1][c[14] as usize]
        ^ t[0][c[15] as usize]
}

/// Applies a GF(2) linear operator (64×64 bit matrix, `mat[i]` = image of
/// basis bit `i`) to a CRC state.
#[inline]
fn gf2_times(mat: &[u64; 64], mut vec: u64) -> u64 {
    let mut sum = 0u64;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// The operator that advances an MSB-first CRC64 state by one zero byte.
fn byte_operator() -> &'static [u64; 64] {
    use std::sync::OnceLock;
    static OP: OnceLock<[u64; 64]> = OnceLock::new();
    OP.get_or_init(|| {
        let t0 = &tables()[0];
        let mut m = [0u64; 64];
        for (i, out) in m.iter_mut().enumerate() {
            let c = 1u64 << i;
            *out = (c << 8) ^ t0[(c >> 56) as usize];
        }
        m
    })
}

/// `M^(2^k)` for the one-zero-byte operator `M`, all 64 binary powers,
/// built once. Squaring the operator per [`crc64_shift_zeros`] call cost
/// more than the lane hashing it stitched; with the cache a shift is one
/// 64-op matrix–vector product per set bit of `len`.
fn power_operators() -> &'static [[u64; 64]; 64] {
    use std::sync::OnceLock;
    static OPS: OnceLock<Box<[[u64; 64]; 64]>> = OnceLock::new();
    OPS.get_or_init(|| {
        let mut ops = Box::new([[0u64; 64]; 64]);
        ops[0] = *byte_operator();
        for k in 1..64 {
            let (done, rest) = ops.split_at_mut(k);
            let prev = &done[k - 1];
            for (n, out) in rest[0].iter_mut().enumerate() {
                *out = gf2_times(prev, prev[n]);
            }
        }
        ops
    })
}

/// Advances `crc` as if `len` zero bytes followed: applies the cached
/// binary powers of the byte operator selected by the bits of `len`
/// (powers of one matrix commute, so the order does not matter).
fn crc64_shift_zeros(mut crc: u64, mut len: u64) -> u64 {
    if crc == 0 || len == 0 {
        return crc;
    }
    let ops = power_operators();
    let mut k = 0usize;
    while len != 0 {
        if len & 1 != 0 {
            crc = gf2_times(&ops[k], crc);
        }
        len >>= 1;
        k += 1;
    }
    crc
}

/// Combines two independently computed digests: the CRC64 of `A ‖ B`
/// given `crc64(A)`, `crc64(B)`, and `len(B)`.
///
/// Valid because this CRC is linear with init 0 and no xor-out:
/// `crc(A ‖ B) = crc(A ‖ 0^len(B)) ^ crc(0^len(A) ‖ B)`, the first term is
/// `crc(A)` advanced by `len(B)` zero bytes, and leading zeros do not move
/// a zero-initialized state.
pub fn crc64_combine(crc_a: u64, crc_b: u64, len_b: u64) -> u64 {
    crc64_shift_zeros(crc_a, len_b) ^ crc_b
}

/// Minimum input size for the 4-lane path; below it the stitching
/// overhead dominates and [`crc64`] is used directly.
const PARALLEL_CUTOVER: usize = 1024;

simd_dispatch! {
    /// One-shot CRC64 over `data` using four independent slice-by-16
    /// dependency chains over four quarters, stitched with
    /// [`crc64_combine`]. Bit-identical to [`crc64`] / [`crc64_reference`]
    /// at every length (differential-tested).
    pub fn crc64_parallel(data: &[u8]) -> u64 {
        if data.len() < PARALLEL_CUTOVER {
            return crc64(data);
        }
        let q = (data.len() / 4) & !15;
        let t = tables();
        let (a, rest) = data.split_at(q);
        let (b, rest) = rest.split_at(q);
        let (c, rest) = rest.split_at(q);
        let (d, tail) = rest.split_at(q);
        let mut s = [0u64; 4];
        for i in (0..q).step_by(16) {
            s[0] = step16(t, s[0], &a[i..i + 16]);
            s[1] = step16(t, s[1], &b[i..i + 16]);
            s[2] = step16(t, s[2], &c[i..i + 16]);
            s[3] = step16(t, s[3], &d[i..i + 16]);
        }
        // total = shift(shift(shift(s0, q)^s1, q)^s2, q)^s3, then the tail.
        let mut crc = s[0];
        for lane in &s[1..] {
            crc = crc64_combine(crc, *lane, q as u64);
        }
        crc64_combine(crc, crc64(tail), tail.len() as u64)
    }
}
///
/// `update` may be called with arbitrary split points; the digest is
/// identical to hashing the concatenation in one call (the sliced loop
/// keeps no partial-block state — tails shorter than a block fall back to
/// the byte loop, which commutes with any chunking).
///
/// # Examples
///
/// ```
/// use strom_kernels::crc64::Crc64;
/// let mut a = Crc64::new();
/// a.update(b"hello ");
/// a.update(b"world");
/// assert_eq!(a.finish(), strom_kernels::crc64::crc64(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Feeds more bytes (slice-by-16 fast path).
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for c in &mut chunks {
            crc = step16(t, crc, c);
        }
        for &b in chunks.remainder() {
            crc = (crc << 8) ^ t[0][(((crc >> 56) ^ u64::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot CRC64 over `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

/// The original byte-at-a-time CRC64 — the reference implementation the
/// slice-by-16 fast path is differential-tested (and benchmarked) against.
pub fn crc64_reference(data: &[u8]) -> u64 {
    let t = &tables()[0];
    let mut crc = 0u64;
    for &b in data {
        crc = (crc << 8) ^ t[(((crc >> 56) ^ u64::from(b)) & 0xff) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // ECMA-182 (non-reflected, init 0, no xorout) check value for
        // "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
        assert_eq!(crc64_reference(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc64(b""), 0);
        assert_eq!(crc64_reference(b""), 0);
    }

    #[test]
    fn sliced_matches_reference_across_lengths() {
        let data: Vec<u8> = (0..100u32)
            .map(|i| (i.wrapping_mul(41) % 253) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc64(&data[..len]),
                crc64_reference(&data[..len]),
                "len = {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc64::new();
        for chunk in data.chunks(777) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let mut data = vec![0xa5u8; 512];
        let base = crc64(&data);
        for i in [0usize, 100, 511] {
            data[i] ^= 0x01;
            assert_ne!(crc64(&data), base, "flip at {i} undetected");
            data[i] ^= 0x01;
        }
    }

    #[test]
    fn combine_stitches_split_digests() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for split in [0usize, 1, 15, 16, 17, 1000, 4999, 5000] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc64_combine(crc64(a), crc64(b), b.len() as u64),
                crc64(&data),
                "split = {split}"
            );
        }
    }

    #[test]
    fn parallel_matches_reference_across_lengths() {
        // Cover below/above the cutover, every tail length mod 16, and
        // lane-boundary off-by-ones.
        let data: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        let mut lens: Vec<usize> = (0..48).collect();
        lens.extend([1000, 1023, 1024, 1025, 4096, 4100, 8191, 16384, 20_000]);
        for len in lens {
            assert_eq!(
                crc64_parallel(&data[..len]),
                crc64_reference(&data[..len]),
                "len = {len}"
            );
        }
    }

    #[test]
    fn different_lengths_of_zeros_differ() {
        // CRC64 with init 0 maps all-zero inputs of any length to 0 —
        // a known property of non-inverted CRCs. The consistency kernel's
        // object layout therefore stores the CRC alongside a length, and
        // the experiments use non-zero payloads. Document the property.
        assert_eq!(crc64(&[0u8; 8]), 0);
        assert_eq!(crc64(&[0u8; 64]), 0);
        assert_ne!(crc64(&[1u8; 8]), crc64(&[1u8; 16]));
    }
}
