//! CRC64 (ECMA-182), the checksum of the consistency kernel.
//!
//! §6.3 offloads a CRC64 data-consistency check to the NIC. The paper
//! notes (footnote 8) that CRC64 "is inherently sequential" with no SIMD
//! or CPU instruction support — which is why the software baseline pays up
//! to 40 % overhead while the FPGA pipeline hides it. This is a real,
//! table-driven implementation used by both the kernel and the software
//! baseline.
//!
//! The hot loop is **slice-by-16**: sixteen composed 256-entry tables
//! consume sixteen input bytes per step. That does not contradict the
//! paper's "inherently sequential" observation — the recurrence is still
//! serial across blocks, there is simply more table lookup per step; the
//! simulator's consistency-kernel and software-baseline experiments hash
//! megabytes, so the constant factor matters. The byte-at-a-time loop is
//! kept as [`crc64_reference`] for differential tests and the `wire_micro`
//! bench.

/// The ECMA-182 polynomial in normal (MSB-first) form.
pub const POLY_ECMA_182: u64 = 0x42F0_E1EB_A9EA_3693;

/// Slice-by-16 tables for the MSB-first polynomial. `t[0]` is the
/// classic byte table; `t[k][b]` is the CRC contribution of byte `b`
/// followed by `k` zero bytes.
fn tables() -> &'static [[u64; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<[[u64; 256]; 16]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u64; 256]; 16]);
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY_ECMA_182
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        for k in 1..16 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev << 8) ^ t[0][(prev >> 56) as usize];
            }
        }
        t
    })
}

/// A streaming CRC64 computation.
///
/// `update` may be called with arbitrary split points; the digest is
/// identical to hashing the concatenation in one call (the sliced loop
/// keeps no partial-block state — tails shorter than a block fall back to
/// the byte loop, which commutes with any chunking).
///
/// # Examples
///
/// ```
/// use strom_kernels::crc64::Crc64;
/// let mut a = Crc64::new();
/// a.update(b"hello ");
/// a.update(b"world");
/// assert_eq!(a.finish(), strom_kernels::crc64::crc64(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Feeds more bytes (slice-by-16 fast path).
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for c in &mut chunks {
            let x = crc ^ u64::from_be_bytes(c[0..8].try_into().expect("sized"));
            crc = t[15][(x >> 56) as usize]
                ^ t[14][((x >> 48) & 0xff) as usize]
                ^ t[13][((x >> 40) & 0xff) as usize]
                ^ t[12][((x >> 32) & 0xff) as usize]
                ^ t[11][((x >> 24) & 0xff) as usize]
                ^ t[10][((x >> 16) & 0xff) as usize]
                ^ t[9][((x >> 8) & 0xff) as usize]
                ^ t[8][(x & 0xff) as usize]
                ^ t[7][c[8] as usize]
                ^ t[6][c[9] as usize]
                ^ t[5][c[10] as usize]
                ^ t[4][c[11] as usize]
                ^ t[3][c[12] as usize]
                ^ t[2][c[13] as usize]
                ^ t[1][c[14] as usize]
                ^ t[0][c[15] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc << 8) ^ t[0][(((crc >> 56) ^ u64::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot CRC64 over `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

/// The original byte-at-a-time CRC64 — the reference implementation the
/// slice-by-16 fast path is differential-tested (and benchmarked) against.
pub fn crc64_reference(data: &[u8]) -> u64 {
    let t = &tables()[0];
    let mut crc = 0u64;
    for &b in data {
        crc = (crc << 8) ^ t[(((crc >> 56) ^ u64::from(b)) & 0xff) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // ECMA-182 (non-reflected, init 0, no xorout) check value for
        // "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
        assert_eq!(crc64_reference(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc64(b""), 0);
        assert_eq!(crc64_reference(b""), 0);
    }

    #[test]
    fn sliced_matches_reference_across_lengths() {
        let data: Vec<u8> = (0..100u32)
            .map(|i| (i.wrapping_mul(41) % 253) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc64(&data[..len]),
                crc64_reference(&data[..len]),
                "len = {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc64::new();
        for chunk in data.chunks(777) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let mut data = vec![0xa5u8; 512];
        let base = crc64(&data);
        for i in [0usize, 100, 511] {
            data[i] ^= 0x01;
            assert_ne!(crc64(&data), base, "flip at {i} undetected");
            data[i] ^= 0x01;
        }
    }

    #[test]
    fn different_lengths_of_zeros_differ() {
        // CRC64 with init 0 maps all-zero inputs of any length to 0 —
        // a known property of non-inverted CRCs. The consistency kernel's
        // object layout therefore stores the CRC alongside a length, and
        // the experiments use non-zero payloads. Document the property.
        assert_eq!(crc64(&[0u8; 8]), 0);
        assert_eq!(crc64(&[0u8; 64]), 0);
        assert_ne!(crc64(&[1u8; 8]), crc64(&[1u8; 16]));
    }
}
