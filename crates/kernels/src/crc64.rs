//! CRC64 (ECMA-182), the checksum of the consistency kernel.
//!
//! §6.3 offloads a CRC64 data-consistency check to the NIC. The paper
//! notes (footnote 8) that CRC64 "is inherently sequential" with no SIMD
//! or CPU instruction support — which is why the software baseline pays up
//! to 40 % overhead while the FPGA pipeline hides it. This is a real,
//! table-driven implementation used by both the kernel and the software
//! baseline.

/// The ECMA-182 polynomial in normal (MSB-first) form.
pub const POLY_ECMA_182: u64 = 0x42F0_E1EB_A9EA_3693;

fn table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY_ECMA_182
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// A streaming CRC64 computation.
///
/// # Examples
///
/// ```
/// use strom_kernels::crc64::Crc64;
/// let mut a = Crc64::new();
/// a.update(b"hello ");
/// a.update(b"world");
/// assert_eq!(a.finish(), strom_kernels::crc64::crc64(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in data {
            crc = (crc << 8) ^ t[(((crc >> 56) ^ u64::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot CRC64 over `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // ECMA-182 (non-reflected, init 0, no xorout) check value for
        // "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc64::new();
        for chunk in data.chunks(777) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let mut data = vec![0xa5u8; 512];
        let base = crc64(&data);
        for i in [0usize, 100, 511] {
            data[i] ^= 0x01;
            assert_ne!(crc64(&data), base, "flip at {i} undetected");
            data[i] ^= 0x01;
        }
    }

    #[test]
    fn different_lengths_of_zeros_differ() {
        // CRC64 with init 0 maps all-zero inputs of any length to 0 —
        // a known property of non-inverted CRCs. The consistency kernel's
        // object layout therefore stores the CRC alongside a length, and
        // the experiments use non-zero payloads. Document the property.
        assert_eq!(crc64(&[0u8; 8]), 0);
        assert_eq!(crc64(&[0u8; 64]), 0);
        assert_ne!(crc64(&[1u8; 8]), crc64(&[1u8; 16]));
    }
}
