//! A top-k selection kernel: streaming order statistics on the NIC.
//!
//! §1 positions stream kernels as data-reduction bumps-in-the-wire; top-k
//! is the canonical "give me the heavy hitters" reduction — the response
//! (k values) is tiny and size-independent of the input, which is exactly
//! why the StRoM verbs use write semantics (§5.1).
//!
//! The kernel treats RPC WRITE payload as 8 B unsigned tuples and keeps
//! the k largest in an on-chip min-heap. The hot loop is a vectorized
//! *threshold scan*: once the heap is full, a whole 64-tuple block is
//! compared against the current minimum with one [`crate::simd`] predicate
//! sweep, and only the (rare) candidates that beat it touch the heap — the
//! same fast path a hardware implementation gets from a parallel
//! comparator front-end ahead of a serial heap. The result is
//! bit-identical to a tuple-at-a-time heap insert because tuples excluded
//! by the block-entry threshold can only lose against the monotonically
//! rising minimum.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::simd_dispatch;

simd_dispatch! {
    /// Survivor mask of one run of up to 64 little-endian 8 B tuples:
    /// bit i is set iff tuple i is (unsigned) greater than `floor`. The
    /// comparison reads the wire bytes in place — no staging copy — and
    /// the loop lowers to 256-bit loads and compares under the AVX2
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if `run` is longer than 64 tuples.
    pub fn gt_mask_le_bytes(run: &[u8], floor: u64) -> u64 {
        assert!(run.len() <= 64 * 8, "one mask word covers 64 tuples");
        let mut m = 0u64;
        for (i, c) in run.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(c.try_into().expect("sized"));
            m |= u64::from(v > floor) << i;
        }
        m
    }
}

/// Parameters of the top-k kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKParams {
    /// Number of maxima to keep (1 ..= 4096).
    pub k: u32,
    /// Requester-side address the result record is written to.
    pub target_address: u64,
}

/// Encoded parameter length in bytes.
pub const TOPK_PARAMS_LEN: usize = 16;

/// Largest supported k (bounds on-chip state like the shuffle kernel's
/// 1024-partition limit).
pub const MAX_K: u32 = 4096;

impl TopKParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(TOPK_PARAMS_LEN);
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&self.target_address.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<TopKParams> {
        if buf.len() < TOPK_PARAMS_LEN {
            return None;
        }
        let k = u32::from_le_bytes(buf[0..4].try_into().expect("sized"));
        if k == 0 || k > MAX_K {
            return None;
        }
        Some(TopKParams {
            k,
            target_address: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
        })
    }
}

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    Active {
        qpn: Qpn,
        params: TopKParams,
    },
}

/// The top-k kernel FSM.
#[derive(Debug, Default)]
pub struct TopKKernel {
    state: State,
    /// Min-heap of the current k maxima.
    heap: BinaryHeap<Reverse<u64>>,
    /// Partial tuple spilled across packet boundaries.
    spill: Vec<u8>,
    /// Tuples observed in the current invocation.
    seen: u64,
}

impl TopKKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tuples observed so far (Controller status view).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current maxima in descending order.
    pub fn top(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.heap.iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Encodes the result record: count, then the values descending.
    pub fn encode_result(top: &[u64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + top.len() * 8);
        out.extend_from_slice(&(top.len() as u64).to_le_bytes());
        for v in top {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a result record into the descending maxima.
    pub fn decode_result(buf: &[u8]) -> Option<Vec<u64>> {
        if buf.len() < 8 {
            return None;
        }
        let n = u64::from_le_bytes(buf[0..8].try_into().expect("sized")) as usize;
        if buf.len() < 8 + n * 8 {
            return None;
        }
        Some(
            buf[8..8 + n * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
                .collect(),
        )
    }

    /// Folds one tuple in (the scalar reference path).
    #[inline]
    fn offer(heap: &mut BinaryHeap<Reverse<u64>>, k: usize, value: u64) {
        if heap.len() < k {
            heap.push(Reverse(value));
        } else if value > heap.peek().expect("non-empty").0 {
            heap.pop();
            heap.push(Reverse(value));
        }
    }

    /// Streams raw little-endian tuple bytes through the vectorized
    /// select path. Public so the micro-benchmarks and differential
    /// tests drive the exact code the kernel runs on the wire.
    pub fn ingest(&mut self, k: usize, data: &[u8]) {
        let mut input: &[u8] = data;
        let joined;
        if !self.spill.is_empty() {
            let mut j = std::mem::take(&mut self.spill);
            j.extend_from_slice(data);
            joined = j;
            input = &joined;
        }
        let whole = input.len() / 8 * 8;
        for run in input[..whole].chunks(64 * 8) {
            self.seen += (run.len() / 8) as u64;
            if self.heap.len() < k {
                // Warm-up: the heap is still filling; no threshold exists.
                for c in run.chunks_exact(8) {
                    let v = u64::from_le_bytes(c.try_into().expect("sized"));
                    Self::offer(&mut self.heap, k, v);
                }
                continue;
            }
            // Steady state: one vector sweep over the wire bytes rejects
            // the whole run against the current minimum; only survivors
            // are decoded, and they re-check against the (possibly risen)
            // minimum inside `offer`.
            let floor = self.heap.peek().expect("full").0;
            let mut mask = gt_mask_le_bytes(run, floor);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize * 8;
                mask &= mask - 1;
                let v = u64::from_le_bytes(run[i..i + 8].try_into().expect("sized"));
                Self::offer(&mut self.heap, k, v);
            }
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
    }
}

impl Kernel for TopKKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::TOPK
    }

    fn name(&self) -> &'static str {
        "topk"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = TopKParams::decode(&params) else {
                    return Vec::new();
                };
                self.heap.clear();
                self.spill.clear();
                self.seen = 0;
                self.state = State::Active { qpn, params: p };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                let State::Active { qpn, params } = &self.state else {
                    return Vec::new();
                };
                let (qpn, params) = (*qpn, *params);
                self.ingest(params.k as usize, &data);
                if last {
                    vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: params.target_address,
                            data: Bytes::from(Self::encode_result(&self.top())),
                        },
                        KernelAction::Done,
                    ]
                } else {
                    Vec::new()
                }
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Reference top-k of a slice: sort descending, truncate (verification).
pub fn reference_topk(values: &[u64], k: usize) -> Vec<u64> {
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured(k: u32) -> TopKKernel {
        let mut kernel = TopKKernel::new();
        let a = kernel.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: TopKParams {
                k,
                target_address: 0x7000,
            }
            .encode(),
        });
        assert_eq!(a, vec![KernelAction::Done]);
        kernel
    }

    fn result_of(actions: &[KernelAction]) -> Vec<u64> {
        actions
            .iter()
            .find_map(|a| match a {
                KernelAction::RoceSend { data, .. } => TopKKernel::decode_result(data),
                _ => None,
            })
            .expect("result record")
    }

    #[test]
    fn params_round_trip() {
        let p = TopKParams {
            k: 10,
            target_address: 0xabc,
        };
        assert_eq!(TopKParams::decode(&p.encode()), Some(p));
        assert!(TopKParams::decode(&[0u8; 8]).is_none());
        let zero = TopKParams {
            k: 0,
            target_address: 0,
        };
        assert!(
            TopKParams::decode(&zero.encode()).is_none(),
            "k = 0 rejected"
        );
    }

    #[test]
    fn matches_sort_based_reference() {
        // Pseudo-random values with duplicates; multiple block widths.
        let values: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1000)
            .collect();
        for k in [1usize, 7, 64, 100] {
            let mut kernel = configured(k as u32);
            let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            let actions = kernel.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::from(data),
                last: true,
            });
            assert_eq!(result_of(&actions), reference_topk(&values, k), "k = {k}");
        }
    }

    #[test]
    fn fragmentation_does_not_change_the_result() {
        let values: Vec<u64> = (0..999u64).map(|i| i.wrapping_mul(7919) % 500).collect();
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut kernel = configured(16);
        let mut fed = 0;
        let mut result = None;
        for chunk in data.chunks(13) {
            fed += chunk.len();
            for a in kernel.on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::copy_from_slice(chunk),
                last: fed == data.len(),
            }) {
                if let KernelAction::RoceSend { data, .. } = a {
                    result = TopKKernel::decode_result(&data);
                }
            }
        }
        assert_eq!(result, Some(reference_topk(&values, 16)));
    }

    #[test]
    fn short_streams_return_fewer_than_k() {
        let mut kernel = configured(100);
        let actions = kernel.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::copy_from_slice(
                &[5u64, 3, 9]
                    .iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect::<Vec<u8>>(),
            ),
            last: true,
        });
        assert_eq!(result_of(&actions), vec![9, 5, 3]);
    }

    #[test]
    fn data_before_configuration_is_ignored() {
        let mut kernel = TopKKernel::new();
        let a = kernel.on_event(KernelEvent::RoceData {
            qpn: 1,
            data: Bytes::from_static(&[0u8; 16]),
            last: true,
        });
        assert!(a.is_empty());
    }
}
