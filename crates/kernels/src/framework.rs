//! The kernel hardware interface as an event/action protocol.
//!
//! Listing 1 of the paper fixes the interface of every StRoM kernel:
//!
//! ```c
//! void strom_kernel(stream<ap_uint<24>>&  qpnIn,
//!                   stream<ap_uint<256>>& paramIn,
//!                   stream<net_axis<512>>& roceDataIn,
//!                   stream<memCmd>&        dmaCmdOut,
//!                   stream<net_axis<512>>& dmaDataOut,
//!                   stream<net_axis<512>>& dmaDataIn,
//!                   stream<roceMeta>&      roceMetaOut,
//!                   stream<net_axis<512>>& roceDataOut);
//! ```
//!
//! In the simulation those eight FIFOs become an event/action protocol:
//! inbound streams (`qpnIn`+`paramIn`, `roceDataIn`, `dmaDataIn`) arrive as
//! [`KernelEvent`]s, outbound streams (`dmaCmdOut`+`dmaDataOut`,
//! `roceMetaOut`+`roceDataOut`) leave as [`KernelAction`]s. Kernels are
//! pure state machines; the NIC's kernel fabric executes actions with
//! PCIe/network timing and routes DMA read completions back by tag.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

/// An input to a kernel (one of the inbound streams of Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// A new RPC invocation: `qpnIn` + `paramIn` (§5.1, RDMA RPC Params).
    Invoke {
        /// QP the request arrived on — responses go back on the same QP.
        qpn: Qpn,
        /// Parameter bytes from the RPC Params payload.
        params: Bytes,
    },
    /// Payload from the network: `roceDataIn` (RDMA RPC WRITE stream, or a
    /// tapped copy of ordinary WRITE payload for receive kernels).
    RoceData {
        /// QP the payload arrived on.
        qpn: Qpn,
        /// The data word(s).
        data: Bytes,
        /// Whether this is the last packet of the message.
        last: bool,
    },
    /// Completion of a DMA read this kernel issued: `dmaDataIn`.
    DmaData {
        /// The tag of the [`KernelAction::DmaRead`] this answers.
        tag: u32,
        /// The bytes read from host memory.
        data: Bytes,
    },
}

/// An output of a kernel (one of the outbound streams of Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelAction {
    /// Issue a DMA read (`dmaCmdOut`); data returns as
    /// [`KernelEvent::DmaData`] with the same tag.
    DmaRead {
        /// Kernel-chosen tag to match the completion.
        tag: u32,
        /// Virtual address in host memory.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Issue a DMA write (`dmaCmdOut` + `dmaDataOut`).
    DmaWrite {
        /// Virtual address in host memory.
        vaddr: u64,
        /// The bytes to store.
        data: Bytes,
    },
    /// Transmit data to the requesting node (`roceMetaOut` +
    /// `roceDataOut`): an RDMA WRITE into the requester's memory —
    /// "the metadata consists of the QPN, the target virtual address, and
    /// the length" (§5.2).
    RoceSend {
        /// QP to respond on.
        qpn: Qpn,
        /// Target virtual address on the requester.
        remote_vaddr: u64,
        /// The response bytes.
        data: Bytes,
    },
    /// The current invocation finished (for accounting; no wire effect).
    Done,
}

/// A StRoM kernel: a sans-IO state machine behind the fixed interface.
pub trait Kernel {
    /// The RPC op-code requests are matched against (§5.1).
    fn rpc_op(&self) -> RpcOpCode;

    /// A short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Feeds one event; returns the actions to execute, in order.
    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction>;

    /// Pipeline processing cycles per 64 B word (II = 1 ⇒ 1; the paper
    /// requires line-rate kernels, §3.4). Used by the timing model.
    fn cycles_per_word(&self) -> u64 {
        1
    }

    /// Downcasting access to the concrete kernel — how the host reads
    /// kernel status (the paper's Controller exposes "status and
    /// performance metrics" registers, §4.3).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Wraps a kernel with an artificial initiation interval — a kernel that
/// needs `cycles` clock cycles per datapath word instead of 1.
///
/// §3.4 demands II = 1 ("the application's hardware implementation needs
/// to consume the data stream at line rate. Otherwise, StRoM might affect
/// the functionality of the original RDMA operation"); this wrapper exists
/// to *violate* that condition on purpose, so the testbed and the
/// `abl-slow-kernel` ablation can show the consequence.
pub struct Throttled<K> {
    inner: K,
    cycles: u64,
}

impl<K: Kernel> Throttled<K> {
    /// Wraps `inner` with an initiation interval of `cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn new(inner: K, cycles: u64) -> Self {
        assert!(cycles > 0, "initiation interval must be at least 1");
        Self { inner, cycles }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<K: Kernel + 'static> Kernel for Throttled<K> {
    fn rpc_op(&self) -> RpcOpCode {
        self.inner.rpc_op()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        self.inner.on_event(event)
    }

    fn cycles_per_word(&self) -> u64 {
        self.cycles
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The 8-byte error sentinel kernels write to the requester when an
/// operation fails (e.g. traversal key not found, §5.1 "an error code is
/// written back to the requesting node").
pub const ERROR_SENTINEL: u64 = 0xFFFF_FFFF_DEAD_0000;

/// Encodes an error code into the sentinel's low 16 bits.
pub fn error_word(code: u16) -> [u8; 8] {
    (ERROR_SENTINEL | u64::from(code)).to_le_bytes()
}

/// Decodes an error word; returns the code if the word is a sentinel.
pub fn decode_error(word: u64) -> Option<u16> {
    if word & 0xFFFF_FFFF_FFFF_0000 == ERROR_SENTINEL {
        Some((word & 0xffff) as u16)
    } else {
        None
    }
}

/// Error code: no key matched and the structure is exhausted.
pub const ERR_NOT_FOUND: u16 = 1;
/// Error code: malformed kernel parameters.
pub const ERR_BAD_PARAMS: u16 = 2;
/// Error code: consistency check failed permanently.
pub const ERR_INCONSISTENT: u16 = 3;
/// Error code: an insert found no free bucket and the kernel's arena is
/// exhausted.
pub const ERR_NO_SPACE: u16 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_words_round_trip() {
        for code in [ERR_NOT_FOUND, ERR_BAD_PARAMS, ERR_INCONSISTENT, 0xffff] {
            let word = u64::from_le_bytes(error_word(code));
            assert_eq!(decode_error(word), Some(code));
        }
    }

    #[test]
    fn ordinary_data_is_not_an_error() {
        assert_eq!(decode_error(42), None);
        assert_eq!(decode_error(0x1234_5678_9abc_def0), None);
    }

    /// A trivial kernel used to exercise the trait surface.
    struct Echo;

    impl Kernel for Echo {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn rpc_op(&self) -> RpcOpCode {
            RpcOpCode(0xEE)
        }

        fn name(&self) -> &'static str {
            "echo"
        }

        fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
            match event {
                KernelEvent::Invoke { qpn, params } => vec![
                    KernelAction::RoceSend {
                        qpn,
                        remote_vaddr: 0,
                        data: params,
                    },
                    KernelAction::Done,
                ],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn echo_kernel_reflects_params() {
        let mut k = Echo;
        assert_eq!(k.cycles_per_word(), 1, "default is line rate");
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 3,
            params: Bytes::from_static(b"ping"),
        });
        assert_eq!(
            actions[0],
            KernelAction::RoceSend {
                qpn: 3,
                remote_vaddr: 0,
                data: Bytes::from_static(b"ping")
            }
        );
        assert_eq!(actions[1], KernelAction::Done);
    }
}
