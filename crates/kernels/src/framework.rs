//! The kernel hardware interface as an event/action protocol.
//!
//! Listing 1 of the paper fixes the interface of every StRoM kernel:
//!
//! ```c
//! void strom_kernel(stream<ap_uint<24>>&  qpnIn,
//!                   stream<ap_uint<256>>& paramIn,
//!                   stream<net_axis<512>>& roceDataIn,
//!                   stream<memCmd>&        dmaCmdOut,
//!                   stream<net_axis<512>>& dmaDataOut,
//!                   stream<net_axis<512>>& dmaDataIn,
//!                   stream<roceMeta>&      roceMetaOut,
//!                   stream<net_axis<512>>& roceDataOut);
//! ```
//!
//! In the simulation those eight FIFOs become an event/action protocol:
//! inbound streams (`qpnIn`+`paramIn`, `roceDataIn`, `dmaDataIn`) arrive as
//! [`KernelEvent`]s, outbound streams (`dmaCmdOut`+`dmaDataOut`,
//! `roceMetaOut`+`roceDataOut`) leave as [`KernelAction`]s. Kernels are
//! pure state machines; the NIC's kernel fabric executes actions with
//! PCIe/network timing and routes DMA read completions back by tag.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

/// An input to a kernel (one of the inbound streams of Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// A new RPC invocation: `qpnIn` + `paramIn` (§5.1, RDMA RPC Params).
    Invoke {
        /// QP the request arrived on — responses go back on the same QP.
        qpn: Qpn,
        /// Parameter bytes from the RPC Params payload.
        params: Bytes,
    },
    /// Payload from the network: `roceDataIn` (RDMA RPC WRITE stream, or a
    /// tapped copy of ordinary WRITE payload for receive kernels).
    RoceData {
        /// QP the payload arrived on.
        qpn: Qpn,
        /// The data word(s).
        data: Bytes,
        /// Whether this is the last packet of the message.
        last: bool,
    },
    /// Completion of a DMA read this kernel issued: `dmaDataIn`.
    DmaData {
        /// The tag of the [`KernelAction::DmaRead`] this answers.
        tag: u32,
        /// The bytes read from host memory.
        data: Bytes,
    },
}

/// An output of a kernel (one of the outbound streams of Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelAction {
    /// Issue a DMA read (`dmaCmdOut`); data returns as
    /// [`KernelEvent::DmaData`] with the same tag.
    DmaRead {
        /// Kernel-chosen tag to match the completion.
        tag: u32,
        /// Virtual address in host memory.
        vaddr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Issue a DMA write (`dmaCmdOut` + `dmaDataOut`).
    DmaWrite {
        /// Virtual address in host memory.
        vaddr: u64,
        /// The bytes to store.
        data: Bytes,
    },
    /// Transmit data to the requesting node (`roceMetaOut` +
    /// `roceDataOut`): an RDMA WRITE into the requester's memory —
    /// "the metadata consists of the QPN, the target virtual address, and
    /// the length" (§5.2).
    RoceSend {
        /// QP to respond on.
        qpn: Qpn,
        /// Target virtual address on the requester.
        remote_vaddr: u64,
        /// The response bytes.
        data: Bytes,
    },
    /// Hand data to the next kernel of a chain: `roceDataOut` looped back
    /// into a downstream `roceDataIn` instead of leaving the NIC. Emitted
    /// by transforming stages (e.g. CRC-verify strips its trailer and
    /// forwards the payload); interpreted by [`KernelChain`]. At the top
    /// level — a chain's own final stage, or a kernel deployed outside a
    /// chain — the fabric drops the words (there is no downstream FIFO).
    Forward {
        /// The data handed downstream.
        data: Bytes,
        /// Whether this also closes the downstream stream.
        last: bool,
    },
    /// The current invocation finished (for accounting; no wire effect).
    Done,
}

/// A StRoM kernel: a sans-IO state machine behind the fixed interface.
pub trait Kernel {
    /// The RPC op-code requests are matched against (§5.1).
    fn rpc_op(&self) -> RpcOpCode;

    /// A short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Feeds one event; returns the actions to execute, in order.
    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction>;

    /// Pipeline processing cycles per 64 B word (II = 1 ⇒ 1; the paper
    /// requires line-rate kernels, §3.4). Used by the timing model.
    fn cycles_per_word(&self) -> u64 {
        1
    }

    /// Downcasting access to the concrete kernel — how the host reads
    /// kernel status (the paper's Controller exposes "status and
    /// performance metrics" registers, §4.3).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Wraps a kernel with an artificial initiation interval — a kernel that
/// needs `cycles` clock cycles per datapath word instead of 1.
///
/// §3.4 demands II = 1 ("the application's hardware implementation needs
/// to consume the data stream at line rate. Otherwise, StRoM might affect
/// the functionality of the original RDMA operation"); this wrapper exists
/// to *violate* that condition on purpose, so the testbed and the
/// `abl-slow-kernel` ablation can show the consequence.
pub struct Throttled<K> {
    inner: K,
    cycles: u64,
}

impl<K: Kernel> Throttled<K> {
    /// Wraps `inner` with an initiation interval of `cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn new(inner: K, cycles: u64) -> Self {
        assert!(cycles > 0, "initiation interval must be at least 1");
        Self { inner, cycles }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<K: Kernel + 'static> Kernel for Throttled<K> {
    fn rpc_op(&self) -> RpcOpCode {
        self.inner.rpc_op()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        self.inner.on_event(event)
    }

    fn cycles_per_word(&self) -> u64 {
        self.cycles
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The 8-byte error sentinel kernels write to the requester when an
/// operation fails (e.g. traversal key not found, §5.1 "an error code is
/// written back to the requesting node").
pub const ERROR_SENTINEL: u64 = 0xFFFF_FFFF_DEAD_0000;

/// Encodes an error code into the sentinel's low 16 bits.
pub fn error_word(code: u16) -> [u8; 8] {
    (ERROR_SENTINEL | u64::from(code)).to_le_bytes()
}

/// Decodes an error word; returns the code if the word is a sentinel.
pub fn decode_error(word: u64) -> Option<u16> {
    if word & 0xFFFF_FFFF_FFFF_0000 == ERROR_SENTINEL {
        Some((word & 0xffff) as u16)
    } else {
        None
    }
}

/// Error code: no key matched and the structure is exhausted.
pub const ERR_NOT_FOUND: u16 = 1;
/// Error code: malformed kernel parameters.
pub const ERR_BAD_PARAMS: u16 = 2;
/// Error code: consistency check failed permanently.
pub const ERR_INCONSISTENT: u16 = 3;
/// Error code: an insert found no free bucket and the kernel's arena is
/// exhausted.
pub const ERR_NO_SPACE: u16 = 4;

/// Bit position where a chain stage's index is packed into DMA tags: the
/// low 24 bits stay the stage's own tag namespace, the high bits identify
/// the stage, so two stages may use the same inner tag concurrently.
pub const STAGE_TAG_SHIFT: u32 = 24;

const STAGE_TAG_MASK: u32 = (1 << STAGE_TAG_SHIFT) - 1;

/// How a (non-final) chain stage's output streams feed the next stage.
///
/// The FPGA analogue is which of the stage's outbound FIFOs is spliced
/// into the downstream kernel's `roceDataIn` instead of leaving the
/// module. Explicit [`KernelAction::Forward`] words always go downstream,
/// whatever the route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageRoute {
    /// Only explicit [`KernelAction::Forward`] words go downstream — for
    /// transforming stages (CRC-verify) that consume the inbound stream.
    Handoff,
    /// Bump-in-the-wire: the stage observes the stream and the inbound
    /// words themselves continue to the next stage unchanged (how the
    /// paper's receive kernels tap a WRITE, §3.5).
    Tap,
    /// The stage's `DmaWrite` payloads are diverted downstream instead of
    /// being written to host memory (e.g. a filter pushing its qualifying
    /// tuples into an aggregator instead of a result region).
    CaptureDmaWrites,
    /// The stage's `RoceSend` payloads are diverted downstream instead of
    /// being sent to the requester. Error sentinels are never diverted —
    /// they always reach the requester (in-band error propagation).
    CaptureRoceSends,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StagePhase {
    /// Waiting for the stage's configuration `Done` (some stages, like
    /// shuffle, configure asynchronously via a DMA read).
    Configuring,
    /// Configured; consuming stream data.
    Streaming,
    /// Emitted its end-of-stream `Done`.
    Finished,
}

struct Stage {
    kernel: Box<dyn Kernel>,
    route: StageRoute,
    phase: StagePhase,
    /// Whether this stage has received its `last` word (guards against
    /// double-close when both a `Forward { last: true }` and the upstream
    /// `Done` cascade would end the stream).
    input_closed: bool,
}

/// Parameters of a [`KernelChain`] invocation: one opaque parameter blob
/// per stage, length-prefixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainParams {
    /// Per-stage parameter payloads, in stage order.
    pub stages: Vec<Bytes>,
}

impl ChainParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.stages.len() as u16).to_le_bytes());
        for s in &self.stages {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<ChainParams> {
        let count = u16::from_le_bytes(buf.get(0..2)?.try_into().ok()?) as usize;
        let mut stages = Vec::with_capacity(count);
        let mut off = 2usize;
        for _ in 0..count {
            let len = u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?) as usize;
            off += 4;
            stages.push(Bytes::copy_from_slice(buf.get(off..off + len)?));
            off += len;
        }
        Some(ChainParams { stages })
    }
}

/// A pipeline of kernels behind one RPC op-code: each stage's outbound
/// stream (selected by its [`StageRoute`]) is spliced into the next
/// stage's `roceDataIn`, with per-stage DMA-tag namespaces and in-band
/// error propagation.
///
/// Protocol, mirroring the single stream kernels:
///
/// - `Invoke` carries [`ChainParams`] — one parameter blob per stage; each
///   stage is invoked with its own blob. The chain emits its
///   configuration `Done` once **all** stages have configured (a stage
///   configuring asynchronously, e.g. shuffle's histogram DMA read, delays
///   it).
/// - `RoceData` feeds stage 0. When a stage emits its end-of-stream
///   `Done`, the chain closes the next stage's input with an empty `last`
///   word, so summaries cascade front-to-back deterministically; when the
///   final stage finishes, the chain emits its own end-of-stream `Done`.
/// - A non-final stage sending an 8 B `ERR_*` sentinel ([`error_word`])
///   latches the chain into a failed state: the sentinel passes through to
///   the requester and no further data flows downstream (streams still
///   close so every stage finalizes and the fabric is not wedged).
#[allow(missing_debug_implementations)]
pub struct KernelChain {
    op: RpcOpCode,
    name: &'static str,
    stages: Vec<Stage>,
    qpn: Qpn,
    failed: bool,
    /// Stages whose configuration `Done` is still outstanding.
    configuring: usize,
}

impl KernelChain {
    /// Builds a chain answering to `op` from `(kernel, route)` stages.
    /// The final stage's route is irrelevant (its outputs leave the chain
    /// as-is); pass [`StageRoute::Handoff`].
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or holds more than 8 stages (the tag
    /// namespace allows 256; 8 matches plausible on-chip budgets).
    pub fn new(op: RpcOpCode, stages: Vec<(Box<dyn Kernel>, StageRoute)>) -> Self {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        assert!(stages.len() <= 8, "at most 8 stages per chain");
        let label = stages
            .iter()
            .map(|(k, _)| k.name())
            .collect::<Vec<_>>()
            .join("→");
        let name: &'static str = Box::leak(format!("chain({label})").into_boxed_str());
        Self {
            op,
            name,
            stages: stages
                .into_iter()
                .map(|(kernel, route)| Stage {
                    kernel,
                    route,
                    phase: StagePhase::Finished,
                    input_closed: true,
                })
                .collect(),
            qpn: 0,
            failed: false,
            configuring: 0,
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages (never true — `new` rejects it).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Whether an in-band error sentinel latched the chain failed during
    /// the current invocation.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Downcasting access to stage `i`'s kernel (status registers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> &dyn Kernel {
        self.stages[i].kernel.as_ref()
    }

    /// Feeds `data` into stage `i`'s `roceDataIn` and routes the fallout.
    fn feed(&mut self, i: usize, data: Bytes, last: bool, out: &mut Vec<KernelAction>) {
        if i >= self.stages.len() || self.stages[i].input_closed {
            return;
        }
        if last {
            self.stages[i].input_closed = true;
        }
        let tap = self.stages[i].route == StageRoute::Tap && i + 1 < self.stages.len();
        let actions = self.stages[i].kernel.on_event(KernelEvent::RoceData {
            qpn: self.qpn,
            data: data.clone(),
            last,
        });
        // Tap: the inbound words continue downstream ahead of whatever
        // this stage produced (matching wire order on the FPGA: the word
        // passes through the splice before the stage's actions retire).
        if tap && !self.failed && !data.is_empty() {
            self.feed(i + 1, data, false, out);
        }
        self.route(i, actions, out);
    }

    /// Routes one batch of stage `i`'s actions: namespaces DMA tags,
    /// diverts captured streams downstream, passes the rest through, and
    /// advances the stage's phase on `Done`.
    fn route(&mut self, i: usize, actions: Vec<KernelAction>, out: &mut Vec<KernelAction>) {
        let is_final = i + 1 == self.stages.len();
        let route = self.stages[i].route;
        let mut finished_streaming = false;
        for a in actions {
            match a {
                KernelAction::DmaRead { tag, vaddr, len } => {
                    debug_assert!(tag <= STAGE_TAG_MASK, "stage DMA tags are 24-bit");
                    out.push(KernelAction::DmaRead {
                        tag: ((i as u32) << STAGE_TAG_SHIFT) | (tag & STAGE_TAG_MASK),
                        vaddr,
                        len,
                    });
                }
                KernelAction::DmaWrite { vaddr, data } => {
                    if !is_final && route == StageRoute::CaptureDmaWrites {
                        if !self.failed {
                            self.feed(i + 1, data, false, out);
                        }
                    } else {
                        out.push(KernelAction::DmaWrite { vaddr, data });
                    }
                }
                KernelAction::RoceSend {
                    qpn,
                    remote_vaddr,
                    data,
                } => {
                    let sentinel = data.len() == 8
                        && decode_error(u64::from_le_bytes(data[..].try_into().expect("sized")))
                            .is_some();
                    if sentinel && !is_final {
                        // In-band error: always reaches the requester and
                        // stops downstream data.
                        self.failed = true;
                        out.push(KernelAction::RoceSend {
                            qpn,
                            remote_vaddr,
                            data,
                        });
                    } else if !is_final && route == StageRoute::CaptureRoceSends {
                        if !self.failed {
                            self.feed(i + 1, data, false, out);
                        }
                    } else {
                        out.push(KernelAction::RoceSend {
                            qpn,
                            remote_vaddr,
                            data,
                        });
                    }
                }
                KernelAction::Forward { data, last } => {
                    if is_final {
                        // Chains compose: the final stage's hand-off is the
                        // chain's own hand-off.
                        out.push(KernelAction::Forward { data, last });
                    } else if !self.failed {
                        if !data.is_empty() {
                            self.feed(i + 1, data, false, out);
                        }
                        if last {
                            self.feed(i + 1, Bytes::new(), true, out);
                        }
                    }
                }
                KernelAction::Done => match self.stages[i].phase {
                    StagePhase::Configuring => {
                        self.stages[i].phase = StagePhase::Streaming;
                        self.configuring -= 1;
                        if self.configuring == 0 {
                            out.push(KernelAction::Done);
                        }
                    }
                    StagePhase::Streaming => {
                        self.stages[i].phase = StagePhase::Finished;
                        finished_streaming = true;
                    }
                    StagePhase::Finished => {}
                },
            }
        }
        if finished_streaming {
            if is_final {
                out.push(KernelAction::Done);
            } else {
                // Cascade end-of-stream so the next stage finalizes (its
                // summary, if any, follows the data it already received).
                self.feed(i + 1, Bytes::new(), true, out);
            }
        }
    }
}

impl Kernel for KernelChain {
    fn rpc_op(&self) -> RpcOpCode {
        self.op
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        let mut out = Vec::new();
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let stage_params = match ChainParams::decode(&params) {
                    Some(p) if p.stages.len() == self.stages.len() => p.stages,
                    // Malformed chain params: complete the invocation
                    // without configuring (the fabric must not wedge).
                    _ => return vec![KernelAction::Done],
                };
                self.qpn = qpn;
                self.failed = false;
                self.configuring = self.stages.len();
                for s in &mut self.stages {
                    s.phase = StagePhase::Configuring;
                    s.input_closed = false;
                }
                for (i, sp) in stage_params.into_iter().enumerate() {
                    let actions = self.stages[i]
                        .kernel
                        .on_event(KernelEvent::Invoke { qpn, params: sp });
                    self.route(i, actions, &mut out);
                }
            }
            KernelEvent::RoceData { data, last, .. } => {
                self.feed(0, data, last, &mut out);
            }
            KernelEvent::DmaData { tag, data } => {
                let i = (tag >> STAGE_TAG_SHIFT) as usize;
                if i < self.stages.len() {
                    let actions = self.stages[i].kernel.on_event(KernelEvent::DmaData {
                        tag: tag & STAGE_TAG_MASK,
                        data,
                    });
                    self.route(i, actions, &mut out);
                }
            }
        }
        out
    }

    /// A chain runs at the initiation interval of its slowest stage.
    fn cycles_per_word(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.kernel.cycles_per_word())
            .max()
            .unwrap_or(1)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_words_round_trip() {
        for code in [ERR_NOT_FOUND, ERR_BAD_PARAMS, ERR_INCONSISTENT, 0xffff] {
            let word = u64::from_le_bytes(error_word(code));
            assert_eq!(decode_error(word), Some(code));
        }
    }

    #[test]
    fn ordinary_data_is_not_an_error() {
        assert_eq!(decode_error(42), None);
        assert_eq!(decode_error(0x1234_5678_9abc_def0), None);
    }

    /// A trivial kernel used to exercise the trait surface.
    struct Echo;

    impl Kernel for Echo {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn rpc_op(&self) -> RpcOpCode {
            RpcOpCode(0xEE)
        }

        fn name(&self) -> &'static str {
            "echo"
        }

        fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
            match event {
                KernelEvent::Invoke { qpn, params } => vec![
                    KernelAction::RoceSend {
                        qpn,
                        remote_vaddr: 0,
                        data: params,
                    },
                    KernelAction::Done,
                ],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn chain_params_round_trip() {
        let p = ChainParams {
            stages: vec![
                Bytes::from_static(b"alpha"),
                Bytes::new(),
                Bytes::from_static(&[1, 2, 3]),
            ],
        };
        assert_eq!(ChainParams::decode(&p.encode()), Some(p));
        assert_eq!(ChainParams::decode(&[]), None);
        // Truncated stage payload.
        let enc = ChainParams {
            stages: vec![Bytes::from_static(b"xyz")],
        }
        .encode();
        assert_eq!(ChainParams::decode(&enc[..enc.len() - 1]), None);
    }

    /// A stage that counts inbound words, forwards them doubled, and
    /// reports `(words, closed)` via its name-less state — used to probe
    /// chain routing without real kernels.
    struct Doubler {
        words: u64,
        closed: bool,
    }

    impl Kernel for Doubler {
        fn rpc_op(&self) -> RpcOpCode {
            RpcOpCode(0xD0)
        }
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
            match event {
                KernelEvent::Invoke { .. } => vec![KernelAction::Done],
                KernelEvent::RoceData { data, last, .. } => {
                    self.words += data.len() as u64;
                    let mut out = Vec::new();
                    if !data.is_empty() {
                        let mut doubled = data.to_vec();
                        doubled.extend_from_slice(&data);
                        out.push(KernelAction::Forward {
                            data: Bytes::from(doubled),
                            last: false,
                        });
                    }
                    if last {
                        self.closed = true;
                        out.push(KernelAction::Done);
                    }
                    out
                }
                KernelEvent::DmaData { .. } => Vec::new(),
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    /// A stage that fails the stream with `ERR_INCONSISTENT` on the first
    /// data word.
    struct Tripwire;

    impl Kernel for Tripwire {
        fn rpc_op(&self) -> RpcOpCode {
            RpcOpCode(0xD1)
        }
        fn name(&self) -> &'static str {
            "tripwire"
        }
        fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
            match event {
                KernelEvent::Invoke { .. } => vec![KernelAction::Done],
                KernelEvent::RoceData { qpn, data, last } => {
                    let mut out = Vec::new();
                    if !data.is_empty() {
                        out.push(KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: 0x666,
                            data: Bytes::copy_from_slice(&error_word(ERR_INCONSISTENT)),
                        });
                    }
                    if last {
                        out.push(KernelAction::Done);
                    }
                    out
                }
                KernelEvent::DmaData { .. } => Vec::new(),
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn invoke_chain(chain: &mut KernelChain, n: usize) -> Vec<KernelAction> {
        chain.on_event(KernelEvent::Invoke {
            qpn: 9,
            params: ChainParams {
                stages: vec![Bytes::new(); n],
            }
            .encode(),
        })
    }

    #[test]
    fn chain_forwards_through_stages_and_cascades_close() {
        let mut chain = KernelChain::new(
            RpcOpCode(0x40),
            vec![
                (
                    Box::new(Doubler {
                        words: 0,
                        closed: false,
                    }),
                    StageRoute::Handoff,
                ),
                (
                    Box::new(Doubler {
                        words: 0,
                        closed: false,
                    }),
                    StageRoute::Handoff,
                ),
            ],
        );
        assert_eq!(chain.name(), "chain(doubler→doubler)");
        assert_eq!(invoke_chain(&mut chain, 2), vec![KernelAction::Done]);
        let a = chain.on_event(KernelEvent::RoceData {
            qpn: 9,
            data: Bytes::from_static(b"ab"),
            last: true,
        });
        // Stage 1's quadrupled output leaves the chain as a Forward; both
        // stages closed; the chain emitted its end-of-stream Done.
        let fwd: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                KernelAction::Forward { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .collect();
        assert_eq!(fwd, vec![b"abababab".to_vec()]);
        assert_eq!(*a.last().unwrap(), KernelAction::Done);
        let s0 = chain.stage(0).as_any().downcast_ref::<Doubler>().unwrap();
        let s1 = chain.stage(1).as_any().downcast_ref::<Doubler>().unwrap();
        assert_eq!((s0.words, s1.words), (2, 4));
        assert!(s0.closed && s1.closed);
        assert!(!chain.failed());
    }

    #[test]
    fn chain_error_sentinel_latches_and_starves_downstream() {
        let mut chain = KernelChain::new(
            RpcOpCode(0x41),
            vec![
                (Box::new(Tripwire), StageRoute::Tap),
                (
                    Box::new(Doubler {
                        words: 0,
                        closed: false,
                    }),
                    StageRoute::Handoff,
                ),
            ],
        );
        assert_eq!(invoke_chain(&mut chain, 2), vec![KernelAction::Done]);
        let first = chain.on_event(KernelEvent::RoceData {
            qpn: 9,
            data: Bytes::from_static(b"xxxxxxxx"),
            last: false,
        });
        // The sentinel passes through to the requester.
        assert!(first.iter().any(|x| matches!(
            x,
            KernelAction::RoceSend {
                remote_vaddr: 0x666,
                ..
            }
        )));
        assert!(chain.failed());
        // Later data no longer reaches stage 1 (the first tapped word did,
        // cut-through, before the error latched).
        let before = chain
            .stage(1)
            .as_any()
            .downcast_ref::<Doubler>()
            .unwrap()
            .words;
        let more = chain.on_event(KernelEvent::RoceData {
            qpn: 9,
            data: Bytes::from_static(b"yyyyyyyy"),
            last: true,
        });
        let after = chain.stage(1).as_any().downcast_ref::<Doubler>().unwrap();
        assert_eq!(after.words, before, "no data downstream after failure");
        assert!(after.closed, "stream still closes so the stage finalizes");
        assert_eq!(*more.last().unwrap(), KernelAction::Done, "chain completes");
    }

    #[test]
    fn chain_namespaces_dma_tags_per_stage() {
        /// Issues a DMA read with tag 1 at configure time; completes on
        /// the answer (a deliberate inner-tag collision across stages).
        struct Loader {
            got: Option<Vec<u8>>,
        }
        impl Kernel for Loader {
            fn rpc_op(&self) -> RpcOpCode {
                RpcOpCode(0xD2)
            }
            fn name(&self) -> &'static str {
                "loader"
            }
            fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
                match event {
                    KernelEvent::Invoke { .. } => vec![KernelAction::DmaRead {
                        tag: 1,
                        vaddr: 0x100,
                        len: 4,
                    }],
                    KernelEvent::DmaData { tag: 1, data } => {
                        self.got = Some(data.to_vec());
                        vec![KernelAction::Done]
                    }
                    KernelEvent::RoceData { last: true, .. } => vec![KernelAction::Done],
                    _ => Vec::new(),
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let mut chain = KernelChain::new(
            RpcOpCode(0x42),
            vec![
                (
                    Box::new(Loader { got: None }) as Box<dyn Kernel>,
                    StageRoute::Tap,
                ),
                (Box::new(Loader { got: None }), StageRoute::Handoff),
            ],
        );
        let a = invoke_chain(&mut chain, 2);
        // Both stages asked for tag-1 reads; the chain namespaced them.
        let tags: Vec<u32> = a
            .iter()
            .filter_map(|x| match x {
                KernelAction::DmaRead { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![1, (1 << STAGE_TAG_SHIFT) | 1]);
        assert!(
            a.iter().all(|x| *x != KernelAction::Done),
            "still configuring"
        );
        // Answer stage 1 first — routed by the high bits, not arrival order.
        let a1 = chain.on_event(KernelEvent::DmaData {
            tag: (1 << STAGE_TAG_SHIFT) | 1,
            data: Bytes::from_static(&[9, 9, 9, 9]),
        });
        assert!(a1.is_empty(), "chain Done waits for stage 0");
        let a0 = chain.on_event(KernelEvent::DmaData {
            tag: 1,
            data: Bytes::from_static(&[7, 7, 7, 7]),
        });
        assert_eq!(a0, vec![KernelAction::Done], "all stages configured");
        let s0 = chain.stage(0).as_any().downcast_ref::<Loader>().unwrap();
        let s1 = chain.stage(1).as_any().downcast_ref::<Loader>().unwrap();
        assert_eq!(s0.got.as_deref(), Some(&[7u8, 7, 7, 7][..]));
        assert_eq!(s1.got.as_deref(), Some(&[9u8, 9, 9, 9][..]));
    }

    #[test]
    fn chain_rejects_malformed_params_without_wedging() {
        let mut chain = KernelChain::new(
            RpcOpCode(0x43),
            vec![(Box::new(Echo) as Box<dyn Kernel>, StageRoute::Handoff)],
        );
        let a = chain.on_event(KernelEvent::Invoke {
            qpn: 1,
            params: Bytes::from_static(b"\xff"),
        });
        assert_eq!(a, vec![KernelAction::Done]);
        // Stage-count mismatch is rejected the same way.
        let a = invoke_chain(&mut chain, 3);
        assert_eq!(a, vec![KernelAction::Done]);
    }

    #[test]
    fn echo_kernel_reflects_params() {
        let mut k = Echo;
        assert_eq!(k.cycles_per_word(), 1, "default is line rate");
        let actions = k.on_event(KernelEvent::Invoke {
            qpn: 3,
            params: Bytes::from_static(b"ping"),
        });
        assert_eq!(
            actions[0],
            KernelAction::RoceSend {
                qpn: 3,
                remote_vaddr: 0,
                data: Bytes::from_static(b"ping")
            }
        );
        assert_eq!(actions[1], KernelAction::Done);
    }
}
