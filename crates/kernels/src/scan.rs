//! A substring scan kernel: pattern counting over RDMA byte streams.
//!
//! Grep-style predicate push-down is the classic Smart-SSD/Ibex \[55\]
//! workload; on StRoM it becomes a bump-in-the-wire over the receive
//! stream. The kernel counts occurrences of a fixed byte pattern
//! (1 ..= 32 B) in the RPC WRITE payload and returns a 16 B summary
//! `(bytes_scanned, matches)` — the data stays on its way to host memory,
//! the answer is a fixed-size record.
//!
//! The hot loop is [`substring_count`]: a 32-lane first-byte comparison
//! ([`crate::simd::U8x32::eq_bitmask`]) whittles each block down to
//! candidate offsets, and only those are verified with a full compare —
//! the SIMD analogue of the FPGA's parallel shift-register matchers.
//! Differential-tested against the naive nested loop
//! ([`substring_count_reference`]) at every alignment.

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};
use crate::simd::{bytes_equal, U8x32};
use crate::simd_dispatch;

/// Longest supported pattern in bytes.
pub const MAX_PATTERN: usize = 32;

simd_dispatch! {
    /// Counts (possibly overlapping) occurrences of `pattern` in
    /// `haystack`. Vectorized first-byte scan + candidate verification;
    /// reference: [`substring_count_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty or longer than [`MAX_PATTERN`].
    pub fn substring_count(haystack: &[u8], pattern: &[u8]) -> u64 {
        assert!(
            !pattern.is_empty() && pattern.len() <= MAX_PATTERN,
            "pattern must be 1..=32 bytes"
        );
        if haystack.len() < pattern.len() {
            return 0;
        }
        let first = U8x32::splat(pattern[0]);
        let last_start = haystack.len() - pattern.len();
        let mut count = 0u64;
        let mut base = 0usize;
        // Whole 32-byte windows of candidate *start* positions.
        while base + 32 <= last_start + 1 {
            let block = U8x32::load(&haystack[base..base + 32]);
            let mut mask = block.eq_bitmask(first);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let s = base + i;
                if bytes_equal(&haystack[s..s + pattern.len()], pattern) {
                    count += 1;
                }
            }
            base += 32;
        }
        // Scalar tail of start positions.
        for s in base..=last_start {
            if haystack[s] == pattern[0]
                && bytes_equal(&haystack[s..s + pattern.len()], pattern)
            {
                count += 1;
            }
        }
        count
    }
}

/// Naive nested-loop reference for [`substring_count`].
///
/// # Panics
///
/// Panics if `pattern` is empty or longer than [`MAX_PATTERN`].
pub fn substring_count_reference(haystack: &[u8], pattern: &[u8]) -> u64 {
    assert!(
        !pattern.is_empty() && pattern.len() <= MAX_PATTERN,
        "pattern must be 1..=32 bytes"
    );
    if haystack.len() < pattern.len() {
        return 0;
    }
    let mut count = 0u64;
    for s in 0..=haystack.len() - pattern.len() {
        if haystack[s..s + pattern.len()] == *pattern {
            count += 1;
        }
    }
    count
}

/// Parameters of the substring scan kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanParams {
    /// Requester-side address the 16 B summary is written to.
    pub target_address: u64,
    /// The pattern (1 ..= 32 bytes).
    pub pattern: Vec<u8>,
}

/// Encoded parameter length in bytes.
pub const SCAN_PARAMS_LEN: usize = 48;

impl ScanParams {
    /// Encodes into the RPC Params payload.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or longer than [`MAX_PATTERN`].
    pub fn encode(&self) -> Bytes {
        assert!(
            !self.pattern.is_empty() && self.pattern.len() <= MAX_PATTERN,
            "pattern must be 1..=32 bytes"
        );
        let mut out = Vec::with_capacity(SCAN_PARAMS_LEN);
        out.extend_from_slice(&self.target_address.to_le_bytes());
        out.push(self.pattern.len() as u8);
        out.extend_from_slice(&[0u8; 7]);
        out.extend_from_slice(&self.pattern);
        out.resize(SCAN_PARAMS_LEN, 0);
        Bytes::from(out)
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<ScanParams> {
        if buf.len() < SCAN_PARAMS_LEN {
            return None;
        }
        let len = buf[8] as usize;
        if len == 0 || len > MAX_PATTERN {
            return None;
        }
        Some(ScanParams {
            target_address: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            pattern: buf[16..16 + len].to_vec(),
        })
    }
}

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    Active {
        qpn: Qpn,
        params: ScanParams,
    },
}

/// The substring scan kernel FSM.
#[derive(Debug, Default)]
pub struct SubstringScanKernel {
    state: State,
    /// The trailing `pattern_len - 1` bytes of the stream so far, so
    /// matches spanning packet boundaries are found exactly once (a match
    /// fits entirely in the carry only if it were shorter than the
    /// pattern — impossible).
    carry: Vec<u8>,
    /// Payload bytes observed in the current invocation.
    bytes_scanned: u64,
    /// Matches counted so far.
    matches: u64,
}

impl SubstringScanKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(bytes_scanned, matches)` counters (Controller status view).
    pub fn counters(&self) -> (u64, u64) {
        (self.bytes_scanned, self.matches)
    }

    /// Encodes the 16 B summary `(bytes_scanned, matches)`.
    pub fn encode_summary(bytes_scanned: u64, matches: u64) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&bytes_scanned.to_le_bytes());
        out[8..16].copy_from_slice(&matches.to_le_bytes());
        out
    }

    /// Decodes a summary into `(bytes_scanned, matches)`.
    pub fn decode_summary(buf: &[u8]) -> Option<(u64, u64)> {
        if buf.len() < 16 {
            return None;
        }
        Some((
            u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
        ))
    }

    fn ingest(&mut self, pattern: &[u8], data: &[u8]) {
        self.bytes_scanned += data.len() as u64;
        let mut window = std::mem::take(&mut self.carry);
        window.extend_from_slice(data);
        // Consecutive windows overlap in exactly the carry (pattern_len-1
        // bytes) — too short to contain a whole match, so counting every
        // match in each window counts each stream match exactly once.
        if window.len() >= pattern.len() {
            self.matches += substring_count(&window, pattern);
            let keep = pattern.len() - 1;
            let from = window.len() - keep.min(window.len());
            self.carry = window[from..].to_vec();
        } else {
            self.carry = window;
        }
    }
}

impl Kernel for SubstringScanKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::SCAN
    }

    fn name(&self) -> &'static str {
        "scan"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = ScanParams::decode(&params) else {
                    return Vec::new();
                };
                self.carry.clear();
                self.bytes_scanned = 0;
                self.matches = 0;
                self.state = State::Active { qpn, params: p };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                let State::Active { qpn, params } = &self.state else {
                    return Vec::new();
                };
                let (qpn, target) = (*qpn, params.target_address);
                let pattern = params.pattern.clone();
                self.ingest(&pattern, &data);
                if last {
                    vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: target,
                            data: Bytes::copy_from_slice(&Self::encode_summary(
                                self.bytes_scanned,
                                self.matches,
                            )),
                        },
                        KernelAction::Done,
                    ]
                } else {
                    Vec::new()
                }
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Tiny alphabet → plenty of matches and near-misses.
                b'a' + ((s >> 33) % 4) as u8
            })
            .collect()
    }

    #[test]
    fn count_matches_reference_at_every_alignment() {
        let hay = lcg_bytes(1000, 42);
        for plen in [1usize, 2, 3, 5, 8, 31, 32] {
            let pattern = &hay[17..17 + plen];
            for off in 0..4 {
                for len in [0usize, 1, plen - 1, plen, 100, 999 - off] {
                    let sub = &hay[off..off + len.min(hay.len() - off)];
                    assert_eq!(
                        substring_count(sub, pattern),
                        substring_count_reference(sub, pattern),
                        "plen={plen} off={off} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlapping_matches_count_each_position() {
        assert_eq!(substring_count(b"aaaa", b"aa"), 3);
        assert_eq!(substring_count_reference(b"aaaa", b"aa"), 3);
    }

    #[test]
    fn params_round_trip() {
        let p = ScanParams {
            target_address: 0xfeed,
            pattern: b"needle".to_vec(),
        };
        assert_eq!(ScanParams::decode(&p.encode()), Some(p));
        assert!(ScanParams::decode(&[0u8; 16]).is_none());
        let mut zero = [0u8; SCAN_PARAMS_LEN];
        zero[8] = 0; // pattern_len = 0
        assert!(ScanParams::decode(&zero).is_none());
    }

    #[test]
    fn kernel_counts_across_packet_boundaries() {
        let hay = lcg_bytes(5000, 7);
        let pattern = b"abab".to_vec();
        let expect = substring_count_reference(&hay, &pattern);
        assert!(expect > 0, "test data must contain matches");
        for chunk_size in [1usize, 3, 7, 32, 1440] {
            let mut k = SubstringScanKernel::new();
            k.on_event(KernelEvent::Invoke {
                qpn: 1,
                params: ScanParams {
                    target_address: 0x5000,
                    pattern: pattern.clone(),
                }
                .encode(),
            });
            let mut fed = 0;
            let mut summary = None;
            for chunk in hay.chunks(chunk_size) {
                fed += chunk.len();
                for a in k.on_event(KernelEvent::RoceData {
                    qpn: 1,
                    data: Bytes::copy_from_slice(chunk),
                    last: fed == hay.len(),
                }) {
                    if let KernelAction::RoceSend { data, .. } = a {
                        summary = SubstringScanKernel::decode_summary(&data);
                    }
                }
            }
            assert_eq!(
                summary,
                Some((hay.len() as u64, expect)),
                "chunk_size = {chunk_size}"
            );
        }
    }

    #[test]
    fn data_before_configuration_is_ignored() {
        let mut k = SubstringScanKernel::new();
        assert!(k
            .on_event(KernelEvent::RoceData {
                qpn: 1,
                data: Bytes::from_static(b"zzz"),
                last: true,
            })
            .is_empty());
    }
}
