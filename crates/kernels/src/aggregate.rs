//! An aggregation kernel: count/sum/min/max over RDMA streams.
//!
//! §1: StRoM stream kernels "can execute operations such as filtering,
//! **aggregation**, partitioning, and gathering of statistics while data
//! is transmitted" — the in-network data-reduction case the paper argues
//! is infeasible on programmable switches (§2.3: reliable protocols and
//! per-flow state make "data reduction operations, such as aggregation …
//! at the switch highly complex or unfeasible") but natural on the NIC.
//!
//! The kernel folds 8 B unsigned tuples into a running aggregate and, at
//! end of stream, writes a 32 B result record (count, sum, min, max) to
//! the requester — another response whose size is independent of the
//! input, which is why the StRoM verbs use write semantics (§5.1).

use bytes::Bytes;

use strom_wire::bth::Qpn;
use strom_wire::opcode::RpcOpCode;

use crate::framework::{Kernel, KernelAction, KernelEvent};

/// The 32 B aggregate record the kernel returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// Number of tuples.
    pub count: u64,
    /// Wrapping sum of the tuples.
    pub sum: u64,
    /// Minimum tuple (`u64::MAX` for an empty stream).
    pub min: u64,
    /// Maximum tuple (0 for an empty stream).
    pub max: u64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Aggregate {
    /// Folds one tuple in.
    #[inline]
    pub fn add(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Encodes to the 32 B wire record.
    pub fn encode(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&self.count.to_le_bytes());
        out[8..16].copy_from_slice(&self.sum.to_le_bytes());
        out[16..24].copy_from_slice(&self.min.to_le_bytes());
        out[24..32].copy_from_slice(&self.max.to_le_bytes());
        out
    }

    /// Decodes from the 32 B wire record.
    pub fn decode(buf: &[u8]) -> Option<Aggregate> {
        if buf.len() < 32 {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("sized"));
        Some(Aggregate {
            count: u64_at(0),
            sum: u64_at(8),
            min: u64_at(16),
            max: u64_at(24),
        })
    }

    /// Computes the reference aggregate of a slice (for verification).
    pub fn of(values: &[u64]) -> Aggregate {
        let mut agg = Aggregate::default();
        for &v in values {
            agg.add(v);
        }
        agg
    }
}

/// Parameters: where on the requester the result record lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateParams {
    /// Requester-side result address.
    pub target_address: u64,
}

impl AggregateParams {
    /// Encodes into the RPC Params payload.
    pub fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.target_address.to_le_bytes())
    }

    /// Decodes from the RPC Params payload.
    pub fn decode(buf: &[u8]) -> Option<AggregateParams> {
        if buf.len() < 8 {
            return None;
        }
        Some(AggregateParams {
            target_address: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
        })
    }
}

#[derive(Debug, Default)]
enum State {
    #[default]
    Unconfigured,
    Active {
        qpn: Qpn,
        target: u64,
    },
}

/// The aggregation kernel FSM.
#[derive(Debug, Default)]
pub struct AggregateKernel {
    state: State,
    agg: Aggregate,
    spill: Vec<u8>,
}

impl AggregateKernel {
    /// Creates an unconfigured kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// The running aggregate (Controller status view).
    pub fn current(&self) -> Aggregate {
        self.agg
    }

    fn ingest(&mut self, data: &[u8]) {
        let mut input: &[u8] = data;
        let joined;
        if !self.spill.is_empty() {
            let mut j = std::mem::take(&mut self.spill);
            j.extend_from_slice(data);
            joined = j;
            input = &joined;
        }
        let whole = input.len() / 8 * 8;
        for chunk in input[..whole].chunks_exact(8) {
            self.agg
                .add(u64::from_le_bytes(chunk.try_into().expect("sized")));
        }
        if whole < input.len() {
            self.spill = input[whole..].to_vec();
        }
    }
}

impl Kernel for AggregateKernel {
    fn rpc_op(&self) -> RpcOpCode {
        RpcOpCode::AGGREGATE
    }

    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn on_event(&mut self, event: KernelEvent) -> Vec<KernelAction> {
        match event {
            KernelEvent::Invoke { qpn, params } => {
                let Some(p) = AggregateParams::decode(&params) else {
                    return Vec::new();
                };
                self.agg = Aggregate::default();
                self.spill.clear();
                self.state = State::Active {
                    qpn,
                    target: p.target_address,
                };
                vec![KernelAction::Done]
            }
            KernelEvent::RoceData { data, last, .. } => {
                let State::Active { qpn, target } = self.state else {
                    return Vec::new();
                };
                self.ingest(&data);
                if last {
                    vec![
                        KernelAction::RoceSend {
                            qpn,
                            remote_vaddr: target,
                            data: Bytes::copy_from_slice(&self.agg.encode()),
                        },
                        KernelAction::Done,
                    ]
                } else {
                    Vec::new()
                }
            }
            KernelEvent::DmaData { .. } => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured() -> AggregateKernel {
        let mut k = AggregateKernel::new();
        let a = k.on_event(KernelEvent::Invoke {
            qpn: 2,
            params: AggregateParams {
                target_address: 0x8000,
            }
            .encode(),
        });
        assert_eq!(a, vec![KernelAction::Done]);
        k
    }

    #[test]
    fn record_round_trips() {
        let agg = Aggregate {
            count: 1,
            sum: 2,
            min: 3,
            max: 4,
        };
        assert_eq!(Aggregate::decode(&agg.encode()), Some(agg));
        assert!(Aggregate::decode(&[0u8; 16]).is_none());
    }

    #[test]
    fn aggregate_matches_reference() {
        let mut k = configured();
        let values: Vec<u64> = vec![42, 7, 1000, 0, 77, 42];
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let actions = k.on_event(KernelEvent::RoceData {
            qpn: 2,
            data: Bytes::from(data),
            last: true,
        });
        match &actions[0] {
            KernelAction::RoceSend {
                remote_vaddr, data, ..
            } => {
                assert_eq!(*remote_vaddr, 0x8000);
                assert_eq!(Aggregate::decode(data), Some(Aggregate::of(&values)));
            }
            other => panic!("expected RoceSend, got {other:?}"),
        }
    }

    #[test]
    fn chunking_does_not_change_the_result() {
        let values: Vec<u64> = (0..500).map(|i| i * 31).collect();
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut k = configured();
        let mut fed = 0;
        let mut result = None;
        for chunk in data.chunks(13) {
            fed += chunk.len();
            for a in k.on_event(KernelEvent::RoceData {
                qpn: 2,
                data: Bytes::copy_from_slice(chunk),
                last: fed == data.len(),
            }) {
                if let KernelAction::RoceSend { data, .. } = a {
                    result = Aggregate::decode(&data);
                }
            }
        }
        assert_eq!(result, Some(Aggregate::of(&values)));
    }

    #[test]
    fn empty_stream_has_identity_aggregate() {
        let mut k = configured();
        let actions = k.on_event(KernelEvent::RoceData {
            qpn: 2,
            data: Bytes::new(),
            last: true,
        });
        match &actions[0] {
            KernelAction::RoceSend { data, .. } => {
                let agg = Aggregate::decode(data).unwrap();
                assert_eq!(agg.count, 0);
                assert_eq!(agg.min, u64::MAX);
                assert_eq!(agg.max, 0);
            }
            other => panic!("expected RoceSend, got {other:?}"),
        }
    }

    #[test]
    fn sum_wraps_instead_of_panicking() {
        let mut agg = Aggregate::default();
        agg.add(u64::MAX);
        agg.add(2);
        assert_eq!(agg.sum, 1);
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn reinvocation_resets_state() {
        let mut k = configured();
        k.on_event(KernelEvent::RoceData {
            qpn: 2,
            data: Bytes::copy_from_slice(&1u64.to_le_bytes()),
            last: true,
        });
        let mut k2 = k;
        k2.on_event(KernelEvent::Invoke {
            qpn: 2,
            params: AggregateParams { target_address: 0 }.encode(),
        });
        assert_eq!(k2.current().count, 0, "fresh invocation starts clean");
    }
}
