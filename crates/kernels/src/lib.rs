//! The StRoM kernel framework, the paper's four kernels, and their
//! algorithm substrates.
//!
//! §5 of the paper defines a strict hardware interface (Listing 1 /
//! Figure 4) between a kernel and the NIC: two metadata inputs (`qpnIn`,
//! `paramIn`), RoCE data in/out, DMA command/data streams, and RoCE
//! metadata out. [`framework`] reproduces that interface as an
//! event/action protocol so kernels stay **sans-IO**: a kernel is a state
//! machine that consumes [`framework::KernelEvent`]s and emits
//! [`framework::KernelAction`]s, and the NIC simulation executes the
//! actions with PCIe/network timing — exactly as the HLS data-flow modules
//! execute behind FIFOs on the FPGA.
//!
//! The four kernels evaluated in the paper:
//!
//! - [`traversal`]: pointer chasing over remote data structures (§6.2,
//!   Table 2).
//! - [`consistency`]: CRC64-verified object reads with NIC-side retry
//!   (§6.3).
//! - [`shuffle`]: radix partitioning of incoming RDMA streams (§6.4).
//! - [`hll`]: HyperLogLog cardinality estimation at line rate (§7.2).
//!
//! Plus two stream kernels realizing the other operations §1 names
//! ("filtering, aggregation, partitioning, and gathering of statistics"):
//! [`filter`] (selection push-down with an on-NIC result region) and
//! [`aggregate`] (count/sum/min/max reduction).
//!
//! Plus [`get`]: the pedagogical GET kernel of Listing 2, and the host-side
//! data-structure [`layouts`] (linked lists, Pilaf-style hash tables,
//! CRC-stamped object stores) the experiments operate on.
//!
//! Later additions widen the library toward §8's "chain of kernels"
//! outlook: [`topk`], [`bloom`], and [`scan`] stream kernels, a
//! [`crc_verify`] cut-through integrity stage, the
//! [`framework::KernelChain`] combinator composing kernels into on-NIC
//! pipelines ([`chains`] holds the canonical ones), and a portable
//! [`simd`] layer that vectorizes the hot loops while keeping scalar
//! references for differential testing.

pub mod aggregate;
pub mod bloom;
pub mod chains;
pub mod consistency;
pub mod crc64;
pub mod crc_verify;
pub mod filter;
pub mod framework;
pub mod get;
pub mod hash;
pub mod hll;
pub mod hll_kernel;
pub mod layouts;
pub mod put;
pub mod radix;
pub mod scan;
pub mod shuffle;
pub mod simd;
pub mod topk;
pub mod traversal;

pub use aggregate::{Aggregate, AggregateKernel, AggregateParams};
pub use bloom::{BloomFilter, BloomKernel, BloomParams};
pub use consistency::{ConsistencyKernel, ConsistencyParams};
pub use crc_verify::{CrcVerifyKernel, CrcVerifyParams};
pub use filter::{FilterKernel, FilterParams};
pub use framework::{ChainParams, Kernel, KernelAction, KernelChain, KernelEvent, StageRoute};
pub use get::{GetKernel, GetParams};
pub use hll::HyperLogLog;
pub use hll_kernel::HllKernel;
pub use put::{PutConfig, PutKernel};
pub use scan::{ScanParams, SubstringScanKernel};
pub use shuffle::{ShuffleKernel, ShuffleParams};
pub use topk::{TopKKernel, TopKParams};
pub use traversal::{Predicate, TraversalKernel, TraversalParams};
