//! Smoke tests keeping the experiment harness honest: every registered
//! experiment must run and produce a well-formed report. The fast ones
//! run at quick scale; the simulation-heavy ones are exercised by the
//! `figures` binary and the workspace integration tests instead.

use strom_bench::{all_experiments, run_experiment, Scale};

#[test]
fn registry_names_are_unique_and_nonempty() {
    let reg = all_experiments();
    assert!(
        reg.len() >= 19,
        "19 experiments registered, got {}",
        reg.len()
    );
    let mut names: Vec<&str> = reg.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), reg.len(), "duplicate experiment names");
    assert!(reg.iter().all(|(_, d)| !d.is_empty()));
}

#[test]
fn table_experiments_render() {
    for name in ["table1", "table3", "sec61"] {
        let report = run_experiment(name, Scale::Quick);
        assert!(report.starts_with("## "), "{name} must render a heading");
        assert!(report.lines().count() > 3, "{name} must have rows");
    }
}

#[test]
fn fig13a_model_matches_paper_points() {
    let report = run_experiment("fig13a", Scale::Quick);
    // The four thread counts appear with plausible values.
    assert!(report.contains("4.64"), "single-thread point:\n{report}");
    assert!(report.contains("CPU HLL"));
}

#[test]
fn fig7_reproduces_ordering() {
    let report = run_experiment("fig7", Scale::Quick);
    assert!(report.contains("RDMA READ"));
    assert!(report.contains("StRoM"));
    assert!(report.contains("TCP-based RPC"));
    // StRoM's worst point (length 32) stays below READ's.
    let strom_row: Vec<f64> = parse_row(&report, "StRoM");
    let read_row: Vec<f64> = parse_row(&report, "RDMA READ");
    assert!(strom_row.last().unwrap() < read_row.last().unwrap());
}

#[test]
fn fig9_overheads_are_ordered() {
    let report = run_experiment("fig9", Scale::Quick);
    let read: Vec<f64> = parse_row(&report, "READ");
    let sw: Vec<f64> = parse_row(&report, "READ+SW");
    let strom: Vec<f64> = parse_row(&report, "StRoM");
    // At the largest object, SW costs more than the kernel, which costs
    // more than the raw read.
    let last = read.len() - 1;
    assert!(sw[last] > strom[last]);
    assert!(strom[last] > read[last]);
    // The paper's bounds: SW ≤ +45 %, StRoM ≤ +12 %.
    assert!(sw[last] / read[last] < 1.45);
    assert!(strom[last] / read[last] < 1.12);
}

/// Extracts the numeric cells of the series whose label starts with
/// `prefix` (exact label match on the first whitespace-delimited tokens).
fn parse_row(report: &str, prefix: &str) -> Vec<f64> {
    for line in report.lines() {
        if line.starts_with(prefix) {
            let nums: Vec<f64> = line
                .split_whitespace()
                .filter_map(|t| t.parse::<f64>().ok())
                .collect();
            if !nums.is_empty() {
                return nums;
            }
        }
    }
    panic!("series '{prefix}' not found in:\n{report}");
}
