//! A tiny self-contained micro-benchmark runner for the `benches/` tree.
//!
//! The container this repo builds in has no network access, so the usual
//! external harness cannot be a dependency. This module provides the small
//! slice of it the benches need: warmup, repeated timed batches, and a
//! median-of-batches report with optional throughput.

use std::hint::black_box;
use std::time::Instant;

/// Re-exported so bench files can write `micro::black_box(..)`.
pub use std::hint::black_box as bb;

/// One measured result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median nanoseconds per iteration across batches.
    pub ns_per_iter: f64,
}

impl Measurement {
    /// Throughput in GiB/s given `bytes` processed per iteration.
    pub fn gib_per_sec(&self, bytes: u64) -> f64 {
        bytes as f64 / self.ns_per_iter / 1.073_741_824
    }
}

/// Times `f`, printing `name` plus the median ns/iter (and returning it).
///
/// Runs a short warmup, then `BATCHES` batches sized so each takes roughly
/// a millisecond, and reports the median batch — robust to scheduler noise
/// without any external dependency.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    const BATCHES: usize = 9;
    // Warmup and batch sizing: grow until one batch costs ~1 ms.
    let mut iters_per_batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            black_box(f());
        }
        let elapsed = t.elapsed().as_nanos() as u64;
        if elapsed > 1_000_000 || iters_per_batch >= 1 << 20 {
            break;
        }
        iters_per_batch *= 2;
    }
    let mut samples = [0f64; BATCHES];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            black_box(f());
        }
        *s = t.elapsed().as_nanos() as f64 / iters_per_batch as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let m = Measurement {
        ns_per_iter: samples[BATCHES / 2],
    };
    println!("{name:<40} {:>12.1} ns/iter", m.ns_per_iter);
    m
}

/// Like [`bench`] but also prints throughput for `bytes` per iteration.
pub fn bench_throughput<T>(name: &str, bytes: u64, f: impl FnMut() -> T) -> Measurement {
    let m = bench(name, f);
    println!(
        "{:<40} {:>12.3} GiB/s",
        format!("  ({bytes} B)"),
        m.gib_per_sec(bytes)
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_positive_time() {
        let m = bench("noop_accumulate", || {
            let mut x = 0u64;
            for i in 0..64u64 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(m.ns_per_iter > 0.0);
    }

    #[test]
    fn throughput_inverts_time() {
        let m = Measurement { ns_per_iter: 1.0 };
        // 1 byte per ns is ~0.93 GiB/s.
        assert!((m.gib_per_sec(1) - 0.9313).abs() < 0.001);
    }
}
