//! The experiment harness: one function per table and figure of the
//! paper's evaluation (§6, §7), each regenerating the corresponding data
//! series from the simulation and the calibrated baselines.
//!
//! Run everything with the `figures` binary:
//!
//! ```text
//! cargo run --release -p strom-bench --bin figures           # all, quick scale
//! cargo run --release -p strom-bench --bin figures -- fig7   # one experiment
//! cargo run --release -p strom-bench --bin figures -- --full # paper-scale inputs
//! ```
//!
//! `EXPERIMENTS.md` at the repository root records paper-versus-measured
//! for every series printed here.

pub mod experiments;
pub mod micro;

pub use experiments::{all_experiments, run_experiment, run_experiment_telemetry, Scale};
