//! KV serving tier under open-loop load: the latency knee, StRoM NIC
//! kernels vs the TCP RPC baseline.
//!
//! The serving-tier counterpart of the incast figure: instead of a
//! self-throttling window, a Poisson arrival process posts GET/PUT/
//! traversal requests at the *offered* rate whether or not the tier
//! keeps up, and latency is charged from the intended arrival time. As
//! the mean inter-arrival gap shrinks, the quantiles trace the classic
//! hockey-stick — flat while the tier has headroom, then a knee where
//! queueing dominates. The TCP RPC baseline ([`TcpRpcModel`], §6.2)
//! runs the *same* arrival times through per-core FIFO RPC loops: its
//! knee sits an order of magnitude earlier because the server CPU
//! occupancy (~2 µs/request/core) serializes long before the NIC data
//! path does.
//!
//! Every swept point is a fully verified [`run_kv_serve`]: payloads are
//! checked end to end against the version ladder and the exactly-once
//! PUT audit must come out clean, so the figure cannot quote latencies
//! for a tier that corrupted data. The tuned mid-load point is shared
//! with the `wire_micro` binary via [`spec`], so `BENCH_wire.json`'s
//! `kv_*` gates and this figure measure the same runs.

use strom_baselines::tcp_rpc::TcpRpcModel;
use strom_nic::kv_serve::{run_kv_serve, run_kv_serve_instrumented, KvOutcome, KvSpec};
use strom_sim::arrivals::{ArrivalGen, ArrivalProcess};
use strom_sim::report::{Figure, Series};
use strom_sim::time::NANOS;
use strom_telemetry::TelemetryReport;

use super::Scale;

/// Server shards in the tier.
pub const SERVERS: usize = 2;
/// Client nodes (each aggregates an arbitrarily large population; the
/// arrival process, not the node count, sets the offered load).
pub const CLIENTS: usize = 2;
/// Base seed; each swept point folds its gap in so points are
/// independent draws.
pub const SEED: u64 = 0x4B5E_0001;

/// The offered-load axis: mean inter-arrival gaps in nanoseconds,
/// descending gap = ascending load, spanning both sides of the knee.
pub fn gaps_ns(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![6_000, 3_000, 1_500, 900, 600, 400],
        Scale::Full => vec![
            8_000, 6_000, 4_000, 3_000, 2_000, 1_500, 1_000, 700, 500, 400,
        ],
    }
}

/// The gap of the tuned operating point: comfortably below the knee, so
/// CI can hold its p999 to a ceiling.
pub const TUNED_GAP_NS: u64 = 3_000;
/// The overload point whose achieved throughput is the knee floor gate.
pub const OVERLOAD_GAP_NS: u64 = 400;

/// The spec for one swept point. Shared with `wire_micro` so the JSON
/// gates and the figure measure the same runs.
pub fn spec(gap_ns: u64, scale: Scale) -> KvSpec {
    let mut spec = KvSpec::new(SERVERS, CLIENTS, gap_ns * NANOS, SEED ^ gap_ns);
    spec.requests = match scale {
        Scale::Quick => 240,
        Scale::Full => 700,
    };
    spec
}

/// The bursty contrast: an MMPP process with the *same mean rate* as a
/// Poisson process at `gap_ns`, alternating a calm phase with 3x-rate
/// bursts. Equal offered load, fatter tail.
pub fn bursty_spec(gap_ns: u64, scale: Scale) -> KvSpec {
    let mut spec = spec(gap_ns, scale);
    // Calm at 1/3 the Poisson rate for 3/4 of the time, bursts at 3x
    // for the remaining 1/4: the time-weighted rate is 0.75/(3g) +
    // 0.25/(g/3) = 1/g, the same long-run mean — but the burst rate
    // sits *above* the tier's saturation point, so queue built during
    // a burst dwell is what the tail measures.
    spec.process = ArrivalProcess::Mmpp {
        calm_gap: 3 * gap_ns * NANOS,
        burst_gap: gap_ns * NANOS / 3,
        calm_dwell: 150 * gap_ns * NANOS,
        burst_dwell: 50 * gap_ns * NANOS,
    };
    spec.seed ^= 0xB0057;
    spec
}

/// Sums the must-be-zero audit counters of one run.
pub fn audit_violations(o: &KvOutcome) -> u64 {
    o.verify_failures
        + o.lost_puts
        + o.dup_puts
        + o.put_errors
        + o.lost_responses
        + o.qp_errors as u64
}

fn us(ps: Option<u64>) -> Option<f64> {
    ps.map(|p| p as f64 / 1e6)
}

/// The TCP RPC baseline at one swept point: the same Poisson arrival
/// times, `SERVERS` single-core FIFO RPC loops, 2 dependent DRAM hops
/// (entry + value) per lookup. Returns `(p50_us, p99_us)`.
fn tcp_point(point: &KvSpec) -> (f64, f64) {
    let mut gen = ArrivalGen::new(point.process, point.seed);
    let arrivals: Vec<u64> = (0..point.requests).map(|_| gen.next_arrival()).collect();
    let model = TcpRpcModel::new();
    let mut lat = model.open_loop_latencies(&arrivals, 2, u64::from(point.value_size) + 8, SERVERS);
    lat.sort_unstable();
    let q = |f: f64| lat[((lat.len() - 1) as f64 * f) as usize] as f64 / 1e6;
    (q(0.50), q(0.99))
}

/// Renders the serving-tier figures; the tuned point runs instrumented
/// and its registry (per-op latency histograms) becomes the telemetry
/// report.
pub fn run_with_telemetry(scale: Scale) -> (String, TelemetryReport) {
    // Figure 1: latency quantiles vs offered load, StRoM vs TCP RPC.
    let gaps = gaps_ns(scale);
    let mut report = TelemetryReport::new("kv-serve");
    let mut ticks = Vec::new();
    let mut p50 = Vec::new();
    let mut p99 = Vec::new();
    let mut p999 = Vec::new();
    let mut tcp_p50 = Vec::new();
    let mut tcp_p99 = Vec::new();
    let mut runs: Vec<(u64, KvOutcome)> = Vec::new();
    for &gap in &gaps {
        let point = spec(gap, scale);
        let out = if gap == TUNED_GAP_NS {
            let (out, metrics) = run_kv_serve_instrumented(&point);
            report = report.with_registry(&metrics);
            out
        } else {
            run_kv_serve(&point)
        };
        ticks.push(format!("{}k", out.offered_rps / 1000));
        p50.push(us(out.p50_ps));
        p99.push(us(out.p99_ps));
        p999.push(us(out.p999_ps));
        let (t50, t99) = tcp_point(&point);
        tcp_p50.push(Some(t50));
        tcp_p99.push(Some(t99));
        runs.push((gap, out));
    }
    let violations: u64 = runs.iter().map(|(_, o)| audit_violations(o)).sum();
    let latency = Figure::new(
        format!(
            "KV serving tier {SERVERS}x{CLIENTS}: latency vs offered load \
             (open-loop Poisson, Zipf 0.99, 70/20/10 GET/PUT/traversal)"
        ),
        "offered rps",
        ticks.clone(),
        "us",
    )
    .push_series(Series::with_gaps("StRoM p50", p50))
    .push_series(Series::with_gaps("StRoM p99", p99))
    .push_series(Series::with_gaps("StRoM p999", p999))
    .push_series(Series::with_gaps("TCP RPC p50", tcp_p50))
    .push_series(Series::with_gaps("TCP RPC p99", tcp_p99))
    .push_note(format!(
        "every point fully verified: audit violations (lost/dup/misverified) = {violations}; \
         TCP baseline = same arrivals through {SERVERS} FIFO RPC cores at 2 us CPU occupancy"
    ));

    // Figure 2: achieved vs offered throughput (saturation), plus the
    // bursty-MMPP tail at the tuned mean rate.
    let offered: Vec<f64> = runs
        .iter()
        .map(|(_, o)| o.offered_rps as f64 / 1e3)
        .collect();
    let achieved: Vec<f64> = runs
        .iter()
        .map(|(_, o)| o.achieved_rps as f64 / 1e3)
        .collect();
    let tuned = &runs
        .iter()
        .find(|(g, _)| *g == TUNED_GAP_NS)
        .expect("tuned gap is swept")
        .1;
    let bursty = run_kv_serve(&bursty_spec(TUNED_GAP_NS, scale));
    let throughput = Figure::new(
        "KV serving tier: achieved vs offered throughput",
        "offered rps",
        ticks,
        "krps",
    )
    .push_series(Series::new("offered", offered))
    .push_series(Series::new("achieved", achieved))
    .push_note(format!(
        "burstiness at equal mean rate (gap {TUNED_GAP_NS} ns): Poisson p999 {:.1} us vs \
         MMPP p999 {:.1} us (violations {})",
        us(tuned.p999_ps).unwrap_or(0.0),
        us(bursty.p999_ps).unwrap_or(0.0),
        audit_violations(&bursty),
    ));

    (
        format!("{}\n{}", latency.render(), throughput.render()),
        report,
    )
}

/// Renders the serving-tier figures (the registry export is dropped).
pub fn run(scale: Scale) -> String {
    run_with_telemetry(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the tuned operating point: clean audit,
    /// bounded tail, and achieved throughput tracking offered.
    #[test]
    fn tuned_point_serves_cleanly() {
        let out = run_kv_serve(&spec(TUNED_GAP_NS, Scale::Quick));
        assert_eq!(audit_violations(&out), 0);
        assert_eq!(out.completed, 240);
        assert!(out.p999_ps.unwrap() < 100 * strom_sim::time::MICROS);
    }

    /// The TCP baseline's knee sits earlier than StRoM's: at the tuned
    /// gap the FIFO RPC cores are already queueing hard.
    #[test]
    fn tcp_baseline_knees_before_strom() {
        let point = spec(TUNED_GAP_NS, Scale::Quick);
        let strom = run_kv_serve(&point);
        let (_, tcp99) = tcp_point(&point);
        let strom99 = us(strom.p99_ps).unwrap();
        assert!(
            tcp99 > 2.0 * strom99,
            "TCP p99 {tcp99:.1} us must dominate StRoM p99 {strom99:.1} us"
        );
    }
}
