//! Ablation: violating §3.4's line-rate condition.
//!
//! "The application's hardware implementation needs to consume the data
//! stream at line rate. Otherwise, StRoM might affect the functionality
//! of the original RDMA operation." We wrap the HLL kernel with an
//! artificial initiation interval (II = 1, 2, 4, 8) and stream a fixed
//! data set through the 100 G receive tap: the kernel's effective
//! processing rate is `width × f / II` — 164.9 Gbit/s at II = 1 (above
//! line rate, zero overhead) but 20.6 Gbit/s at II = 8.

use strom_kernels::framework::Throttled;
use strom_kernels::hll_kernel::HllKernel;
use strom_nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom_sim::report::{Figure, Series};

use super::Scale;

/// Streams `bytes` through a receive-tapped HLL kernel with the given
/// initiation interval; returns when the kernel finished processing.
fn run_one(ii: u64, bytes: u64) -> f64 {
    let mut tb = Testbed::new(NicConfig::hundred_gig());
    tb.connect_qp(1);
    let src = tb.pin(0, bytes + (1 << 21));
    let dst = tb.pin(1, bytes + (1 << 21));
    tb.deploy_kernel(1, Box::new(Throttled::new(HllKernel::new(), ii)));
    tb.set_receive_tap(1, RpcOpCode::HLL);
    tb.mem(0).write(src, &vec![0x11u8; bytes as usize]);
    let t0 = tb.now();
    let h = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: bytes as u32,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    // End-to-end includes the kernel draining its pipeline backlog: a
    // slow kernel lags the wire and becomes the bottleneck.
    let end = tb.now().max(tb.kernel_busy_until(1, RpcOpCode::HLL));
    let secs = (end - t0) as f64 / 1e12;
    bytes as f64 * 8.0 / 1e9 / secs
}

/// Sweeps the initiation interval at 100 G.
pub fn run(scale: Scale) -> Figure {
    let bytes: u64 = match scale {
        Scale::Quick => 8 << 20,
        Scale::Full => 64 << 20,
    };
    let iis = [1u64, 2, 4, 8];
    let series: Vec<f64> = iis.iter().map(|&ii| run_one(ii, bytes)).collect();
    Figure::new(
        "Ablation: kernel initiation interval at 100G (receive-tapped HLL)",
        "II (cycles/word)",
        iis.iter().map(|ii| ii.to_string()).collect(),
        "Gbit/s",
    )
    .push_series(Series::new("end-to-end goodput incl. kernel", series))
}
