//! Figure 8: remote hash-table lookup latency vs value size.
//!
//! §6.2: Pilaf-layout hash table; "We assume that the hash table entry
//! always matches the given key resulting in the best case of two RDMA
//! read operations to retrieve the value. Using StRoM the latency can be
//! reduced by around 5 µs per lookup due to saving one network round
//! trip. The TCP-based RPC also requires only one round trip, but suffers
//! from long message passing latency for value sizes larger than 256 B."

use strom_baselines::{OneSidedClient, TcpRpcModel};
use strom_kernels::layouts::{build_hash_table, value_pattern};
use strom_kernels::traversal::{TraversalKernel, TraversalParams};
use strom_nic::{RpcOpCode, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::Samples;
use strom_sim::SimRng;

use super::{testbed_10g, Scale};

/// Value sizes of the figure (64 B – 4 KB).
pub const VALUE_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Hash-table entries (large enough that test keys never overflow
/// buckets).
const ENTRIES: u64 = 1024;

/// Keys inserted per table.
const KEYS: u64 = 64;

fn size_label(bytes: u32) -> String {
    if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Runs the three approaches across value sizes.
pub fn run(scale: Scale) -> Figure {
    let mut rng = SimRng::seed(0xF188);
    let iters = scale.iterations();
    let keys: Vec<u64> = (1..=KEYS).collect();

    let mut read_med = Vec::new();
    let mut strom_med = Vec::new();
    let mut tcp_med = Vec::new();

    for &vsize in &VALUE_SIZES {
        // --- two RDMA READs ---
        let mut tb = testbed_10g();
        let scratch = tb.pin(0, 4 << 20);
        let server = tb.pin(1, 4 << 20);
        let ht = build_hash_table(tb.mem(1), server, ENTRIES, &keys, vsize);
        let mut client = OneSidedClient::new(0, 1, scratch, 4 << 20);
        let mut samples = Samples::new();
        for _ in 0..iters {
            let key = keys[rng.below(KEYS) as usize];
            let t0 = tb.now();
            let (value, t1) = client.hash_table_get(&mut tb, ht.entry_addr(key), key);
            assert_eq!(value, value_pattern(key, vsize));
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        read_med.push(samples.summarize().expect("samples").median_us());

        // --- StRoM traversal kernel (single round trip) ---
        let mut tb = testbed_10g();
        let client_buf = tb.pin(0, 4 << 20);
        let server = tb.pin(1, 4 << 20);
        tb.deploy_kernel(1, Box::new(TraversalKernel::new()));
        let ht = build_hash_table(tb.mem(1), server, ENTRIES, &keys, vsize);
        let mut samples = Samples::new();
        for _ in 0..iters {
            let key = keys[rng.below(KEYS) as usize];
            let watch = tb.add_watch(0, client_buf, u64::from(vsize));
            let t0 = tb.now();
            tb.post(
                0,
                1,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::TRAVERSAL,
                    params: TraversalParams::for_hash_table(
                        ht.entry_addr(key),
                        key,
                        vsize,
                        client_buf,
                    )
                    .encode(),
                },
            );
            let t1 = tb.run_until_watch(watch);
            assert_eq!(
                tb.mem(0).read(client_buf, vsize as usize),
                value_pattern(key, vsize)
            );
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        strom_med.push(samples.summarize().expect("samples").median_us());

        // --- TCP RPC ---
        let mut mem = strom_mem::HostMemory::new();
        let (base, _) = mem.pin(4 << 20).unwrap();
        let ht = build_hash_table(&mut mem, base, ENTRIES, &keys, vsize);
        let model = TcpRpcModel::new();
        let mut samples = Samples::new();
        for _ in 0..iters {
            let key = keys[rng.below(KEYS) as usize];
            let (value, lat) = model.hash_table_get(&mut mem, ht.entry_addr(key), key);
            assert_eq!(value, value_pattern(key, vsize));
            samples.record(lat);
        }
        tcp_med.push(samples.summarize().expect("samples").median_us());
    }

    Figure::new(
        "Fig 8: remote hash table lookup latency",
        "value size",
        VALUE_SIZES.iter().map(|&s| size_label(s)).collect(),
        "us",
    )
    .push_series(Series::new("RDMA READ", read_med))
    .push_series(Series::new("StRoM", strom_med))
    .push_series(Series::new("TCP-based RPC", tcp_med))
}
