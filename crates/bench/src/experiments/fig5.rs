//! Figures 5 and 12: microbenchmarks of the raw RoCE NIC — latency,
//! throughput, and message rate of one-sided READ and WRITE.
//!
//! §6.1: latency comes from a ping-pong ("the initiator writes data to the
//! remote machine at a predefined address. The remote machine polls on
//! this address … immediately writes the data back … the corresponding
//! latency (RTT/2) is reported"); throughput sweeps 64 B – 1 MB; message
//! rate uses back-to-back small messages. Figure 12 repeats all three at
//! 100 G.

use strom_nic::{Testbed, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::{goodput_gbps, msg_rate_mps, Samples};
use strom_sim::{default_workers, parallel_map};

use super::Scale;

/// Payload sizes of the latency figures (64 B – 1 KB).
pub const LATENCY_SIZES: [u32; 5] = [64, 128, 256, 512, 1024];

/// Payload sizes of the throughput figures (2^6 – 2^20).
pub fn throughput_sizes() -> Vec<u32> {
    (6..=20).step_by(2).map(|e| 1u32 << e).collect()
}

/// Payload sizes of the message-rate figures.
pub const MSGRATE_SIZES: [u32; 4] = [64, 256, 1024, 4096];

fn size_label(bytes: u32) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Median write ping-pong (RTT/2) and read (full fetch) latency.
pub fn latency(mut tb: Testbed, scale: Scale, title: &str) -> Figure {
    let a_buf = tb.pin(0, 1 << 21);
    let b_buf = tb.pin(1, 1 << 21);
    let iters = scale.iterations();

    let mut write_med = Vec::new();
    let mut read_med = Vec::new();
    for &size in &LATENCY_SIZES {
        // --- WRITE ping-pong, RTT/2 (§6.1) ---
        let mut samples = Samples::new();
        for i in 0..iters {
            let fill = vec![(i + 1) as u8; size as usize];
            tb.mem(0).write(a_buf, &fill);
            let w_b = tb.add_watch(1, b_buf, u64::from(size));
            let t0 = tb.now();
            tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: b_buf,
                    local_vaddr: a_buf,
                    len: size,
                },
            );
            tb.run_until_watch(w_b);
            // The remote side detected the data; it pongs it back.
            let w_a = tb.add_watch(0, a_buf + (1 << 20), u64::from(size));
            tb.post(
                1,
                1,
                WorkRequest::Write {
                    remote_vaddr: a_buf + (1 << 20),
                    local_vaddr: b_buf,
                    len: size,
                },
            );
            let t1 = tb.run_until_watch(w_a);
            samples.record((t1 - t0) / 2);
            tb.run_until_idle();
        }
        write_med.push(samples.summarize().expect("samples").median_us());

        // --- READ: issue to data-in-local-memory ---
        let mut samples = Samples::new();
        tb.mem(1).write(b_buf, &vec![0x5au8; size as usize]);
        for i in 0..iters {
            let slot = a_buf + u64::from(size) * (i as u64 % 4);
            let w = tb.add_watch(0, slot, u64::from(size));
            let t0 = tb.now();
            tb.post(
                0,
                1,
                WorkRequest::Read {
                    remote_vaddr: b_buf,
                    local_vaddr: slot,
                    len: size,
                },
            );
            let t1 = tb.run_until_watch(w);
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        read_med.push(samples.summarize().expect("samples").median_us());
    }

    Figure::new(
        format!("{title}: median latency of RDMA read and write"),
        "payload",
        LATENCY_SIZES.iter().map(|&s| size_label(s)).collect(),
        "us",
    )
    .push_series(Series::new("StRoM: Write (RTT/2)", write_med))
    .push_series(Series::new("StRoM: Read", read_med))
}

/// Streaming goodput: `messages` back-to-back operations per size.
///
/// Each size point builds its own testbeds from `make`, so the sweep is
/// embarrassingly parallel: points fan out across threads and come back
/// in size order, numerically identical to the sequential loop.
pub fn throughput(make: fn() -> Testbed, scale: Scale, title: &str, ideal: f64) -> Figure {
    let sizes = throughput_sizes();
    let points = parallel_map(sizes.clone(), default_workers(), |size| {
        // Enough messages to amortize startup, but bounded total bytes.
        let count = (scale.messages()).min((64 << 20) / size as usize).max(16);

        // --- WRITE stream ---
        let mut tb = make();
        let src = tb.pin(0, u64::from(size).max(1 << 21));
        let dst = tb.pin(1, u64::from(size).max(1 << 21));
        tb.mem(0).write(src, &vec![7u8; size as usize]);
        let t0 = tb.now();
        let mut last = 0;
        for _ in 0..count {
            last = tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst,
                    local_vaddr: src,
                    len: size,
                },
            );
        }
        let t1 = tb.run_until_complete(0, last);
        let write = goodput_gbps(u64::from(size) * count as u64, t0, t1);

        // --- READ stream ---
        let mut tb = make();
        let dst = tb.pin(0, u64::from(size).max(1 << 21));
        let src = tb.pin(1, u64::from(size).max(1 << 21));
        tb.mem(1).write(src, &vec![9u8; size as usize]);
        let t0 = tb.now();
        let mut last = 0;
        for _ in 0..count {
            last = tb.post(
                0,
                1,
                WorkRequest::Read {
                    remote_vaddr: src,
                    local_vaddr: dst,
                    len: size,
                },
            );
        }
        let t1 = tb.run_until_complete(0, last);
        let read = goodput_gbps(u64::from(size) * count as u64, t0, t1);
        (write, read)
    });
    let (write_gbps, read_gbps): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();

    Figure::new(
        format!("{title}: throughput of RDMA read and write (ideal {ideal} Gbit/s)"),
        "payload",
        sizes.iter().map(|&s| size_label(s)).collect(),
        "Gbit/s",
    )
    .push_series(Series::new("StRoM: Write", write_gbps))
    .push_series(Series::new("StRoM: Read", read_gbps))
}

/// Message rate: small back-to-back messages.
///
/// Parallelized per size point like [`throughput`] — every point is an
/// independent simulation, merged back in size order.
pub fn message_rate(make: fn() -> Testbed, scale: Scale, title: &str) -> Figure {
    let points = parallel_map(MSGRATE_SIZES.to_vec(), default_workers(), |size| {
        let count = scale.messages() * 4;

        let mut tb = make();
        let src = tb.pin(0, 1 << 21);
        let dst = tb.pin(1, 1 << 21);
        tb.mem(0).write(src, &vec![3u8; size as usize]);
        let t0 = tb.now();
        let mut last = 0;
        for _ in 0..count {
            last = tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst,
                    local_vaddr: src,
                    len: size,
                },
            );
        }
        let t1 = tb.run_until_complete(0, last);
        let write = msg_rate_mps(count as u64, t0, t1);

        let mut tb = make();
        let dst = tb.pin(0, 1 << 21);
        let src = tb.pin(1, 1 << 21);
        tb.mem(1).write(src, &vec![4u8; size as usize]);
        let t0 = tb.now();
        let mut last = 0;
        for _ in 0..count {
            last = tb.post(
                0,
                1,
                WorkRequest::Read {
                    remote_vaddr: src,
                    local_vaddr: dst,
                    len: size,
                },
            );
        }
        let t1 = tb.run_until_complete(0, last);
        (write, msg_rate_mps(count as u64, t0, t1))
    });
    let (write_rate, read_rate): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();

    Figure::new(
        format!("{title}: message rate of RDMA read and write"),
        "payload",
        MSGRATE_SIZES.iter().map(|&s| size_label(s)).collect(),
        "Mio. msg/s",
    )
    .push_series(Series::new("StRoM: Write", write_rate))
    .push_series(Series::new("StRoM: Read", read_rate))
}
