//! Figure 11: data shuffling execution time (§6.4).
//!
//! Three approaches over 8 B tuples at 10 G:
//!
//! - **RDMA WRITE** — just transmit the data, no partitioning (the floor).
//! - **StRoM** — the shuffle kernel partitions on the receiving NIC
//!   on-the-fly ("data partitioning acts as a bump in the wire").
//! - **SW + RDMA WRITE** — Barthels et al.: the sender partitions on the
//!   CPU (an extra pass + copy), then writes each partition.
//!
//! Data is real: random 8 B tuples flow through the packet layer, the kernel
//! radix-partitions them into the server's memory, and the harness
//! checks conservation of the tuple count.

use strom_baselines::cpu_partition::{software_partition, CpuPartitionModel};
use strom_kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom_nic::{RpcOpCode, Testbed, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::SimRng;

use super::{testbed_10g, FaultTotals, Scale};

/// Number of partitions (power of two ≤ 1024, §6.4).
pub const PARTITIONS: u32 = 256;

/// Transfer chunk: post-one-wait-one keeps the event queue bounded while
/// leaving the link >99.8 % utilized (a ~5 µs bubble every 3.4 ms).
const CHUNK: u32 = 4 << 20;

/// Fills `len` bytes of node-`node` memory at `addr` with random tuples.
fn fill_random(tb: &mut Testbed, node: usize, addr: u64, len: u64, rng: &mut SimRng) {
    let mut buf = vec![0u8; 1 << 20];
    let mut done = 0u64;
    while done < len {
        let chunk = (1u64 << 20).min(len - done) as usize;
        rng.fill_bytes(&mut buf[..chunk]);
        tb.mem(node).write(addr + done, &buf[..chunk]);
        done += chunk as u64;
    }
}

/// Posts `len` bytes as sequential chunks, waiting for each ACK.
fn stream_chunks(
    tb: &mut Testbed,
    make: impl Fn(u64 /* offset */, u32 /* len */) -> WorkRequest,
    len: u64,
) {
    let mut off = 0u64;
    while off < len {
        let chunk = u64::from(CHUNK).min(len - off) as u32;
        let h = tb.post(0, 1, make(off, chunk));
        tb.run_until_complete(0, h);
        off += u64::from(chunk);
    }
}

/// Runs the three approaches across input sizes; reports seconds.
pub fn run(scale: Scale) -> Figure {
    let sizes = scale.shuffle_sizes_mb();
    let mut rng = SimRng::seed(0xF11);

    let mut plain = Vec::new();
    let mut strom = Vec::new();
    let mut sw = Vec::new();
    let mut totals = FaultTotals::default();

    for &mb in &sizes {
        let size = mb << 20;

        // --- plain RDMA WRITE ---
        {
            let mut tb = testbed_10g();
            let src = tb.pin(0, size + (1 << 21));
            let dst = tb.pin(1, size + (1 << 21));
            fill_random(&mut tb, 0, src, size, &mut rng);
            let t0 = tb.now();
            stream_chunks(
                &mut tb,
                |off, len| WorkRequest::Write {
                    remote_vaddr: dst + off,
                    local_vaddr: src + off,
                    len,
                },
                size,
            );
            tb.run_until_idle();
            plain.push((tb.now() - t0) as f64 / 1e12);
            assert_eq!(tb.payload_bytes_rx(1), size);
            totals.absorb(&tb);
        }

        // --- StRoM shuffle kernel ---
        {
            let mut tb = testbed_10g();
            let src = tb.pin(0, size + (1 << 21));
            // Partition regions with 30% headroom for skew.
            let part_cap = ((size / u64::from(PARTITIONS)) * 13 / 10 + 128) as u32;
            let server_len = u64::from(PARTITIONS) * u64::from(part_cap) + (1 << 21);
            let server = tb.pin(1, server_len);
            fill_random(&mut tb, 0, src, size, &mut rng);
            // Histogram in server memory; the kernel DMA-reads it.
            let parts: Vec<(u64, u32)> = (0..u64::from(PARTITIONS))
                .map(|i| (server + (1 << 21) + i * u64::from(part_cap), part_cap))
                .collect();
            let histogram = encode_histogram(&parts);
            let hist_addr = server;
            tb.mem(1).write(hist_addr, &histogram);
            tb.deploy_kernel(1, Box::new(ShuffleKernel::new()));
            // Configure via RPC, then stream the tuples.
            let h = tb.post(
                0,
                1,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::SHUFFLE,
                    params: ShuffleParams {
                        histogram_addr: hist_addr,
                        num_partitions: PARTITIONS,
                    }
                    .encode(),
                },
            );
            tb.run_until_complete(0, h);
            tb.run_until_idle();
            let t0 = tb.now();
            stream_chunks(
                &mut tb,
                |off, len| WorkRequest::RpcWrite {
                    rpc_op: RpcOpCode::SHUFFLE,
                    local_vaddr: src + off,
                    len,
                },
                size,
            );
            tb.run_until_idle();
            strom.push((tb.now() - t0) as f64 / 1e12);
            totals.absorb(&tb);
        }

        // --- SW partition + RDMA WRITE ---
        {
            let mut tb = testbed_10g();
            // Source + a staging buffer for the partitioned copy.
            let src = tb.pin(0, size + (1 << 21));
            let staging = tb.pin(0, size + u64::from(PARTITIONS) * 128 + (1 << 21));
            let dst = tb.pin(1, size + u64::from(PARTITIONS) * 128 + (1 << 21));
            fill_random(&mut tb, 0, src, size, &mut rng);
            let t0 = tb.now();
            // The real partition pass (charged at the calibrated CPU rate).
            let input = tb.mem(0).read(src, size as usize);
            let values: Vec<u64> = input
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
                .collect();
            drop(input);
            let partitioned = software_partition(&values, PARTITIONS as usize);
            drop(values);
            tb.advance(CpuPartitionModel::new().partition_time(size));
            // Copy partitions to staging and write each contiguously.
            let mut cursor = staging;
            let mut dst_cursor = dst;
            let mut regions = Vec::new();
            for p in &partitioned.partitions {
                let bytes: Vec<u8> = p.iter().flat_map(|v| v.to_le_bytes()).collect();
                tb.mem(0).write(cursor, &bytes);
                regions.push((cursor, dst_cursor, bytes.len() as u64));
                cursor += bytes.len() as u64;
                dst_cursor += bytes.len() as u64;
            }
            for (local, remote, len) in regions {
                stream_chunks(
                    &mut tb,
                    |off, chunk| WorkRequest::Write {
                        remote_vaddr: remote + off,
                        local_vaddr: local + off,
                        len: chunk,
                    },
                    len,
                );
            }
            tb.run_until_idle();
            sw.push((tb.now() - t0) as f64 / 1e12);
            totals.absorb(&tb);
        }
    }

    Figure::new(
        "Fig 11: shuffling 8B tuples into 256 partitions (10G)",
        "input size",
        sizes.iter().map(|mb| format!("{mb}MB")).collect(),
        "s",
    )
    .push_series(Series::new("SW + RDMA WRITE", sw))
    .push_series(Series::new("StRoM", strom))
    .push_series(Series::new("RDMA WRITE", plain))
    .push_note(totals.note())
}
