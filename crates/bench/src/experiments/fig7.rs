//! Figure 7: traversing a remote linked list — RDMA READ (linear in list
//! length), StRoM traversal kernel (sublinear: PCIe hops), TCP RPC (flat).
//!
//! §6.2: "We evaluate the latency of retrieving a value in the linked list
//! by randomly picking a key and then retrieving its corresponding value
//! by traversing the remote linked list. We vary the length of the list."
//! Value size 64 B.

use strom_baselines::{OneSidedClient, TcpRpcModel};
use strom_kernels::layouts::{build_linked_list, value_pattern};
use strom_kernels::traversal::{TraversalKernel, TraversalParams};
use strom_nic::{RpcOpCode, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::Samples;
use strom_sim::SimRng;

use super::{testbed_10g, Scale};

/// List lengths of the figure.
pub const LIST_LENGTHS: [usize; 4] = [4, 8, 16, 32];

/// Value size used throughout (the caption's 64 B).
pub const VALUE_SIZE: u32 = 64;

/// Runs the three approaches across the list lengths.
pub fn run(scale: Scale) -> Figure {
    let mut rng = SimRng::seed(0xF167);
    let iters = scale.iterations();

    let mut read_med = Vec::new();
    let mut strom_med = Vec::new();
    let mut tcp_med = Vec::new();

    for &len in &LIST_LENGTHS {
        let keys: Vec<u64> = (1..=len as u64).map(|i| i * 13).collect();

        // --- RDMA READ baseline ---
        let mut tb = testbed_10g();
        let scratch = tb.pin(0, 1 << 21);
        let server = tb.pin(1, 1 << 21);
        let list = build_linked_list(tb.mem(1), server, &keys, VALUE_SIZE);
        let mut client = OneSidedClient::new(0, 1, scratch, 1 << 21);
        let mut samples = Samples::new();
        for _ in 0..iters {
            let key = keys[rng.below(len as u64) as usize];
            let t0 = tb.now();
            let (value, t1, _) = client.list_lookup(&mut tb, list.head, key, VALUE_SIZE);
            assert_eq!(value, value_pattern(key, VALUE_SIZE));
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        read_med.push(samples.summarize().expect("samples").median_us());

        // --- StRoM traversal kernel ---
        let mut tb = testbed_10g();
        let client_buf = tb.pin(0, 1 << 21);
        let server = tb.pin(1, 1 << 21);
        tb.deploy_kernel(1, Box::new(TraversalKernel::new()));
        let list = build_linked_list(tb.mem(1), server, &keys, VALUE_SIZE);
        let mut samples = Samples::new();
        for i in 0..iters {
            let key = keys[rng.below(len as u64) as usize];
            let target = client_buf + (i as u64 % 8) * 1024;
            let watch = tb.add_watch(0, target, u64::from(VALUE_SIZE));
            let t0 = tb.now();
            tb.post(
                0,
                1,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::TRAVERSAL,
                    params: TraversalParams::for_linked_list(list.head, key, VALUE_SIZE, target)
                        .encode(),
                },
            );
            let t1 = tb.run_until_watch(watch);
            assert_eq!(
                tb.mem(0).read(target, VALUE_SIZE as usize),
                value_pattern(key, VALUE_SIZE)
            );
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        strom_med.push(samples.summarize().expect("samples").median_us());

        // --- TCP RPC baseline (server CPU traverses) ---
        let mut mem = strom_mem::HostMemory::new();
        let (base, _) = mem.pin(1 << 21).unwrap();
        let list = build_linked_list(&mut mem, base, &keys, VALUE_SIZE);
        let model = TcpRpcModel::new();
        let mut samples = Samples::new();
        for _ in 0..iters {
            let key = keys[rng.below(len as u64) as usize];
            let (value, lat) = model.list_lookup(&mut mem, list.head, key, VALUE_SIZE);
            assert_eq!(value, value_pattern(key, VALUE_SIZE));
            samples.record(lat);
        }
        tcp_med.push(samples.summarize().expect("samples").median_us());
    }

    Figure::new(
        "Fig 7: traversing a remote linked list (value 64 B)",
        "list length",
        LIST_LENGTHS.iter().map(|l| l.to_string()).collect(),
        "us",
    )
    .push_series(Series::new("RDMA READ", read_med))
    .push_series(Series::new("StRoM", strom_med))
    .push_series(Series::new("TCP-based RPC", tcp_med))
}
