//! Experiment registry and shared scaffolding.

pub mod abl_slow_kernel;
pub mod ablations;
pub mod corpus;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod incast;
pub mod kernel_chain;
pub mod kv_serve;
pub mod sec7;
pub mod shuffle_scale;
pub mod tables;

use strom_nic::{NicConfig, Testbed};
use strom_telemetry::TelemetryReport;

/// Experiment scale: `quick` keeps every run under a few seconds; `full`
/// uses the paper's input sizes (Fig 11's gigabyte shuffles take a while).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced iteration counts and input sizes (default).
    Quick,
    /// The paper's parameters.
    Full,
}

impl Scale {
    /// Latency-sample count per data point.
    pub fn iterations(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Full => 50,
        }
    }

    /// Messages per throughput/message-rate point.
    pub fn messages(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Full => 1000,
        }
    }

    /// Input sizes for the Fig 11 shuffle, in MiB.
    pub fn shuffle_sizes_mb(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![16, 32, 64, 128],
            Scale::Full => vec![128, 256, 512, 1024],
        }
    }
}

/// Aggregates the fault/recovery counters of every testbed an experiment
/// ran, for a figure footnote: drops by cause, retransmissions, backoff
/// events, and QPs in the terminal error state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultTotals {
    lost: u64,
    crc_dropped: u64,
    parse_dropped: u64,
    reordered: u64,
    duplicated: u64,
    retransmissions: u64,
    timeouts: u64,
    backoff_events: u64,
    qps_in_error: u64,
}

impl FaultTotals {
    /// Folds both nodes' status registers into the totals.
    pub fn absorb(&mut self, tb: &Testbed) {
        for node in 0..2 {
            let s = tb.status(node);
            self.lost += s.frames_lost;
            self.crc_dropped += s.frames_crc_dropped;
            self.parse_dropped += s.frames_parse_dropped;
            self.reordered += s.frames_reordered;
            self.duplicated += s.frames_duplicated;
            self.retransmissions += s.retransmissions;
            self.timeouts += s.timeouts;
            self.backoff_events += s.backoff_events;
            self.qps_in_error += s.qps_in_error;
        }
    }

    /// One footnote line summarizing the totals.
    pub fn note(&self) -> String {
        format!(
            "faults: lost={} crc_dropped={} parse_dropped={} reordered={} duplicated={} \
             | recovery: retransmissions={} timeouts={} backoff_events={} qps_in_error={}",
            self.lost,
            self.crc_dropped,
            self.parse_dropped,
            self.reordered,
            self.duplicated,
            self.retransmissions,
            self.timeouts,
            self.backoff_events,
            self.qps_in_error,
        )
    }
}

/// A fresh two-node 10 G testbed with one connected QP.
pub fn testbed_10g() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(1);
    tb
}

/// A fresh two-node 100 G testbed with one connected QP.
pub fn testbed_100g() -> Testbed {
    let mut tb = Testbed::new(NicConfig::hundred_gig());
    tb.connect_qp(1);
    tb
}

/// The experiment registry: `(name, description)`.
pub fn all_experiments() -> Vec<(&'static str, &'static str)> {
    vec![
        ("table1", "Table 1: the five StRoM BTH op-codes"),
        (
            "fig5a",
            "Fig 5a: 10G median latency of READ/WRITE vs payload",
        ),
        ("fig5b", "Fig 5b: 10G throughput of READ/WRITE vs payload"),
        ("fig5c", "Fig 5c: 10G message rate of READ/WRITE vs payload"),
        (
            "fig7",
            "Fig 7: remote linked-list traversal (READ vs StRoM vs TCP RPC)",
        ),
        (
            "fig8",
            "Fig 8: remote hash-table lookup latency vs value size",
        ),
        (
            "fig9",
            "Fig 9: consistency-checked read latency vs object size",
        ),
        (
            "fig10",
            "Fig 10: average latency vs consistency failure rate",
        ),
        (
            "fig11",
            "Fig 11: data shuffling execution time vs input size",
        ),
        (
            "fig12a",
            "Fig 12a: 100G median latency of READ/WRITE vs payload",
        ),
        (
            "fig12b",
            "Fig 12b: 100G throughput of READ/WRITE vs payload",
        ),
        (
            "fig12c",
            "Fig 12c: 100G message rate of READ/WRITE vs payload",
        ),
        ("fig13a", "Fig 13a: CPU HLL throughput vs thread count"),
        ("fig13b", "Fig 13b: StRoM Write+HLL vs plain Write at 100G"),
        (
            "table3",
            "Table 3: resource usage of StRoM at 10G vs 100G on VCU118",
        ),
        (
            "sec61",
            "Sec 6.1: resource percentages on the Virtex-7, QP scaling",
        ),
        (
            "sec7",
            "Sec 7: shuffle (random PCIe) vs HLL (stream) at 10G and 100G",
        ),
        (
            "shuffle-scale",
            "Cluster shuffle scaling: aggregate GB/s and p99 at N = 2/4/8",
        ),
        (
            "incast",
            "Incast N:1 under DCQCN: tail latency vs load, survival, fairness",
        ),
        (
            "kv-serve",
            "KV serving tier: open-loop latency knee, StRoM kernels vs TCP RPC",
        ),
        (
            "kernel-chain",
            "Chained kernel pipelines: filter→agg→HLL and CRC-verify→shuffle throughput",
        ),
        (
            "corpus",
            "Workload corpus: every scenario at 10G+100G vs pinned fingerprints and perf gates",
        ),
        (
            "abl-bypass",
            "Ablation: DMA Descriptor Bypass on/off at 100G",
        ),
        (
            "abl-width",
            "Ablation: datapath width vs latency and resources",
        ),
        ("abl-timeout", "Ablation: retransmission timeout under loss"),
        (
            "abl-slow-kernel",
            "Ablation: kernel initiation interval vs line rate (sec 3.4)",
        ),
    ]
}

/// Runs one experiment by name, returning its rendered report.
///
/// # Panics
///
/// Panics on an unknown experiment name (the `figures` binary validates
/// names against [`all_experiments`] first).
pub fn run_experiment(name: &str, scale: Scale) -> String {
    match name {
        "table1" => tables::table1(),
        "fig5a" => fig5::latency(testbed_10g(), scale, "Fig 5a (10G)").render(),
        "fig5b" => fig5::throughput(testbed_10g, scale, "Fig 5b (10G)", 9.4).render(),
        "fig5c" => fig5::message_rate(testbed_10g, scale, "Fig 5c (10G)").render(),
        "fig7" => fig7::run(scale).render(),
        "fig8" => fig8::run(scale).render(),
        "fig9" => fig9::run(scale).render(),
        "fig10" => fig10::run(scale).render(),
        "fig11" => fig11::run(scale).render(),
        "fig12a" => fig5::latency(testbed_100g(), scale, "Fig 12a (100G)").render(),
        "fig12b" => fig5::throughput(testbed_100g, scale, "Fig 12b (100G)", 94.0).render(),
        "fig12c" => fig5::message_rate(testbed_100g, scale, "Fig 12c (100G)").render(),
        "fig13a" => fig13::cpu_hll().render(),
        "fig13b" => fig13::strom_hll(scale).render(),
        "table3" => tables::table3(),
        "sec61" => tables::sec61(),
        "sec7" => sec7::run(scale).render(),
        "shuffle-scale" => shuffle_scale::run(scale),
        "incast" => incast::run(scale),
        "kv-serve" => kv_serve::run(scale),
        "kernel-chain" => kernel_chain::run(scale),
        "corpus" => corpus::run(scale),
        "abl-bypass" => ablations::bypass(scale).render(),
        "abl-width" => ablations::width(scale).render(),
        "abl-timeout" => ablations::timeout(scale).render(),
        "abl-slow-kernel" => abl_slow_kernel::run(scale).render(),
        other => panic!("unknown experiment '{other}'"),
    }
}

/// Trace-ring capacity for telemetry-enabled experiment runs: large
/// enough to retain the tail of a quick-scale latency sweep, bounded so
/// a full-scale run stays in a few megabytes (older events are
/// overwritten but still counted and fingerprinted).
const TELEMETRY_TRACE_CAPACITY: usize = 1 << 14;

/// Runs one experiment with tracing and metrics enabled, returning the
/// rendered report plus its machine-readable telemetry.
///
/// Only experiments that drive a single instrumented testbed end to end
/// are covered (the latency figures); multi-testbed sweeps and
/// analytical tables return `None` and the `figures` binary falls back
/// to [`run_experiment`].
pub fn run_experiment_telemetry(name: &str, scale: Scale) -> Option<(String, TelemetryReport)> {
    if name == "incast" {
        // The cluster experiment instruments its tuned run itself; its
        // report carries the switch's per-port queue-depth high
        // watermarks and ECN mark counters.
        return Some(incast::run_with_telemetry(scale));
    }
    if name == "kv-serve" {
        // The serving tier instruments its tuned operating point; its
        // report carries the per-op latency histograms.
        return Some(kv_serve::run_with_telemetry(scale));
    }
    let (mut tb, title) = match name {
        "fig5a" => (testbed_10g(), "Fig 5a (10G)"),
        "fig12a" => (testbed_100g(), "Fig 12a (100G)"),
        _ => return None,
    };
    let trace = tb.enable_tracing(TELEMETRY_TRACE_CAPACITY);
    let metrics = tb.metrics().clone();
    let rendered = fig5::latency(tb, scale, title).render();
    let report = TelemetryReport::new(name)
        .with_registry(&metrics)
        .with_trace(&trace);
    Some((rendered, report))
}
