//! §7's qualitative claim, quantified: "the shuffling kernel … requires
//! random access to the host memory. This reduces the effective PCIe
//! bandwidth sufficiently such that it can no longer keep up with the
//! network bandwidth [at 100 G]. However, kernels operating on data
//! streams retain the sequential memory access pattern and can thus
//! benefit from the increased bandwidth and operate at 100 G."
//!
//! We stream the same tuple data through (a) the shuffle kernel (random
//! 128 B flushes) and (b) the HLL receive tap (sequential stores), at
//! both 10 G and 100 G, and report the achieved goodput.

use strom_kernels::hll_kernel::HllKernel;
use strom_kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom_nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom_sim::report::{Figure, Series};

use super::Scale;

const PARTS: u32 = 256;

fn shuffle_goodput(cfg: NicConfig, bytes: u64) -> f64 {
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(1);
    let src = tb.pin(0, bytes + (1 << 21));
    let cap = (bytes / u64::from(PARTS) * 13 / 10 + 256) as u32;
    let server = tb.pin(1, u64::from(PARTS) * u64::from(cap) + (2 << 21));
    let mut buf = vec![0u8; 1 << 20];
    let mut rng = strom_sim::SimRng::seed(7);
    let mut off = 0;
    while off < bytes {
        let chunk = (1u64 << 20).min(bytes - off) as usize;
        rng.fill_bytes(&mut buf[..chunk]);
        tb.mem(0).write(src + off, &buf[..chunk]);
        off += chunk as u64;
    }
    tb.deploy_kernel(1, Box::new(ShuffleKernel::new()));
    let regions: Vec<(u64, u32)> = (0..u64::from(PARTS))
        .map(|i| (server + (1 << 21) + i * u64::from(cap), cap))
        .collect();
    let histogram = encode_histogram(&regions);
    tb.mem(1).write(server, &histogram);
    let h = tb.post(
        0,
        1,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::SHUFFLE,
            params: ShuffleParams {
                histogram_addr: server,
                num_partitions: PARTS,
            }
            .encode(),
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    let t0 = tb.now();
    let h = tb.post(
        0,
        1,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: src,
            len: bytes as u32,
        },
    );
    tb.run_until_complete(0, h);
    // The measure of interest is when the *kernel's DMA writes* finish —
    // the wire may be long done while the PCIe backlog drains.
    tb.run_until_idle();
    let secs = (tb.now() - t0) as f64 / 1e12;
    bytes as f64 * 8.0 / 1e9 / secs
}

fn stream_goodput(cfg: NicConfig, bytes: u64) -> f64 {
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(1);
    let src = tb.pin(0, bytes + (1 << 21));
    let dst = tb.pin(1, bytes + (1 << 21));
    tb.deploy_kernel(1, Box::new(HllKernel::new()));
    tb.set_receive_tap(1, RpcOpCode::HLL);
    let data = vec![0x3cu8; bytes as usize];
    tb.mem(0).write(src, &data);
    let t0 = tb.now();
    let h = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: bytes as u32,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    let secs = (tb.now() - t0) as f64 / 1e12;
    bytes as f64 * 8.0 / 1e9 / secs
}

/// Runs both kernels at both line rates.
pub fn run(scale: Scale) -> Figure {
    let bytes: u64 = match scale {
        Scale::Quick => 16 << 20,
        Scale::Full => 128 << 20,
    };
    let shuffle = vec![
        shuffle_goodput(NicConfig::ten_gig(), bytes),
        shuffle_goodput(NicConfig::hundred_gig(), bytes),
    ];
    let stream = vec![
        stream_goodput(NicConfig::ten_gig(), bytes),
        stream_goodput(NicConfig::hundred_gig(), bytes),
    ];
    Figure::new(
        "Sec 7: random-access vs streaming kernels across line rates",
        "line rate",
        vec!["10G".into(), "100G".into()],
        "Gbit/s",
    )
    .push_series(Series::new(
        "shuffle kernel (random 128B PCIe writes)",
        shuffle,
    ))
    .push_series(Series::new("HLL kernel (sequential stream)", stream))
}
