//! Ablations of StRoM design choices — not figures from the paper, but
//! quantitative support for three design decisions the paper makes:
//!
//! - **Descriptor Bypass** (§4.3): stream DMA with and without the
//!   bypass's low per-command cost — without it, PCIe command overhead
//!   caps 100 G throughput far below line rate.
//! - **Datapath width** (§7): width is what buys the 100 G latency drop,
//!   via the ICRC store-and-forward term (176 vs 22 words per MTU), at a
//!   resource cost the model quantifies.
//! - **Retransmission timeout** (§4.1): too-small timeouts cause spurious
//!   go-back-N storms, too-large ones stretch loss recovery.

use strom_nic::{NicConfig, Testbed, WorkRequest};
use strom_resources::{DesignConfig, Device, ResourceModel};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::goodput_gbps;
use strom_sim::time::MICROS;
use strom_sim::Clock;

use super::Scale;

/// Descriptor Bypass on/off: 100 G write throughput at 4 KB payloads.
pub fn bypass(scale: Scale) -> Figure {
    let run = |bypass_on: bool| -> Vec<f64> {
        let mut out = Vec::new();
        for &size in &[1024u32, 4096, 16_384, 65_536] {
            let mut cfg = NicConfig::hundred_gig();
            if !bypass_on {
                // Every stream command pays the full descriptor cost.
                cfg.pcie.bypass_overhead = cfg.pcie.cmd_overhead;
            }
            let mut tb = Testbed::new(cfg);
            tb.connect_qp(1);
            let src = tb.pin(0, 1 << 21);
            let dst = tb.pin(1, 1 << 21);
            tb.mem(0).write(src, &vec![5u8; size as usize]);
            let count = scale.messages().min((64 << 20) / size as usize).max(16);
            let t0 = tb.now();
            let mut last = 0;
            for _ in 0..count {
                last = tb.post(
                    0,
                    1,
                    WorkRequest::Write {
                        remote_vaddr: dst,
                        local_vaddr: src,
                        len: size,
                    },
                );
            }
            let t1 = tb.run_until_complete(0, last);
            out.push(goodput_gbps(u64::from(size) * count as u64, t0, t1));
        }
        out
    };
    Figure::new(
        "Ablation: DMA Descriptor Bypass at 100G (write throughput)",
        "payload",
        vec!["1KB".into(), "4KB".into(), "16KB".into(), "64KB".into()],
        "Gbit/s",
    )
    .push_series(Series::new("with bypass (StRoM, §4.3)", run(true)))
    .push_series(Series::new("without bypass", run(false)))
}

/// Datapath width sweep: 64 B write latency and the resource price.
pub fn width(_scale: Scale) -> Figure {
    let widths = [8u64, 16, 32, 64];
    let mut latency = Vec::new();
    let mut luts = Vec::new();
    let mut brams = Vec::new();
    for &w in &widths {
        let mut cfg = NicConfig::hundred_gig();
        cfg.datapath_bytes = w;
        // Keep the 100 G clock so only the width varies.
        cfg.clock = Clock::from_mhz(322.0);
        let mut tb = Testbed::new(cfg);
        tb.connect_qp(1);
        let src = tb.pin(0, 1 << 21);
        let dst = tb.pin(1, 1 << 21);
        tb.mem(0).write(src, &[1u8; 1024]);
        let watch = tb.add_watch(1, dst, 1024);
        let t0 = tb.now();
        tb.post(
            0,
            1,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 1024,
            },
        );
        let t1 = tb.run_until_watch(watch);
        latency.push((t1 - t0) as f64 / MICROS as f64);
        tb.run_until_idle();

        let usage = ResourceModel::new().estimate(
            &DesignConfig {
                datapath_bytes: w,
                num_qps: 500,
                tlb_entries: 16_384,
            },
            Device::xcvu9p(),
        );
        luts.push(usage.luts as f64 / 1000.0);
        brams.push(usage.bram36 as f64);
    }
    Figure::new(
        "Ablation: datapath width at 322 MHz (1KB write, one-way)",
        "width",
        widths.iter().map(|w| format!("{w}B")).collect(),
        "us | K LUTs | BRAMs",
    )
    .push_series(Series::new("latency [us]", latency))
    .push_series(Series::new("logic [K LUTs]", luts))
    .push_series(Series::new("on-chip memory [BRAMs]", brams))
}

/// Retransmission timeout sensitivity at 5 % loss.
pub fn timeout(_scale: Scale) -> Figure {
    let timeouts_us = [20u64, 50, 100, 400, 1600];
    let mut time_ms = Vec::new();
    let mut retx = Vec::new();
    let mut totals = super::FaultTotals::default();
    for &t_us in &timeouts_us {
        let mut cfg = NicConfig::ten_gig();
        cfg.retransmit_timeout = t_us * MICROS;
        let mut tb = Testbed::new(cfg);
        tb.connect_qp(1);
        tb.set_loss_rate(0.05);
        let src = tb.pin(0, 2 << 20);
        let dst = tb.pin(1, 2 << 20);
        tb.mem(0).write(src, &vec![3u8; 1 << 20]);
        let t0 = tb.now();
        // 16 × 64 KB writes.
        let mut handles = Vec::new();
        for i in 0..16u64 {
            handles.push(tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst + i * (64 << 10),
                    local_vaddr: src + (i % 16) * (64 << 10),
                    len: 64 << 10,
                },
            ));
        }
        for h in handles {
            tb.run_until_complete(0, h);
        }
        tb.run_until_idle();
        time_ms.push((tb.now() - t0) as f64 / 1e9);
        retx.push(tb.retransmissions(0) as f64);
        totals.absorb(&tb);
    }
    Figure::new(
        "Ablation: retransmission timeout at 5% loss (1 MB in 64KB writes)",
        "timeout",
        timeouts_us.iter().map(|t| format!("{t}us")).collect(),
        "ms | packets",
    )
    .push_series(Series::new("completion time [ms]", time_ms))
    .push_series(Series::new("retransmitted packets", retx))
    .push_note(totals.note())
}
