//! Figure 10: average read latency vs consistency-failure rate (§6.3).
//!
//! "The failure rate is the probability that the consistency check fails
//! when an object is read; note that in this evaluation it does not affect
//! consecutive retries, which always succeed." READ+SW pays a full
//! *network* round trip per retry; the StRoM kernel retries over *PCIe*,
//! so "the overhead from StRoM is minimal up to a failure rate of 50%."

use strom_baselines::{OneSidedClient, SwCrcModel};
use strom_kernels::consistency::{ConsistencyKernel, ConsistencyParams};
use strom_kernels::layouts::build_object_store;
use strom_nic::{RpcOpCode, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::Samples;
use strom_sim::SimRng;

use super::{testbed_10g, FaultTotals, Scale};

/// The figure's x axis.
pub const FAILURE_RATES: [f64; 4] = [0.0, 0.005, 0.05, 0.5];

/// The figure's object sizes.
pub const OBJECT_SIZES: [u32; 3] = [64, 512, 4096];

fn size_label(bytes: u32) -> String {
    if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Runs READ+SW and StRoM across failure rates and sizes.
pub fn run(scale: Scale) -> Figure {
    // Enough iterations that a 0.5 % failure rate is actually sampled.
    let iters = match scale {
        Scale::Quick => 400,
        Scale::Full => 2000,
    };
    let mut fig = Figure::new(
        "Fig 10: average latency vs consistency failure rate",
        "failure rate",
        FAILURE_RATES.iter().map(|r| format!("{r}")).collect(),
        "us (mean)",
    );
    let mut totals = FaultTotals::default();

    for &osize in &OBJECT_SIZES {
        let payload = osize - 8;

        // --- READ + SW: a failed check costs another network read ---
        let mut sw_means = Vec::new();
        for (ri, &rate) in FAILURE_RATES.iter().enumerate() {
            let mut tb = testbed_10g();
            let scratch = tb.pin(0, 4 << 20);
            let server = tb.pin(1, 4 << 20);
            let store = build_object_store(tb.mem(1), server, 1, payload);
            let addr = store.object_addrs[0];
            let mut client = OneSidedClient::new(0, 1, scratch, 4 << 20);
            let model = SwCrcModel::new();
            let mut rng = SimRng::seed(0xF10 + ri as u64);
            let mut samples = Samples::new();
            for _ in 0..iters {
                let t0 = tb.now();
                if rng.chance(rate) {
                    // First read arrives torn: full read + checksum pass,
                    // both wasted; the retry below always succeeds.
                    let (_, _) = client.read_blocking(&mut tb, addr, osize);
                    tb.advance(model.crc_time(osize as usize));
                }
                let (_, t1, attempts) = model.verified_read(&mut tb, &mut client, addr, osize, 4);
                assert_eq!(attempts, 1);
                samples.record(t1 - t0);
                tb.run_until_idle();
            }
            sw_means.push(samples.summarize().expect("samples").mean_us());
            totals.absorb(&tb);
        }
        fig = fig.push_series(Series::new(
            format!("READ+SW: {}", size_label(osize)),
            sw_means,
        ));

        // --- StRoM: the kernel retries over PCIe ---
        let mut strom_means = Vec::new();
        for &rate in &FAILURE_RATES {
            let mut tb = testbed_10g();
            let client_buf = tb.pin(0, 4 << 20);
            let server = tb.pin(1, 4 << 20);
            tb.deploy_kernel(1, Box::new(ConsistencyKernel::new()));
            tb.fabric_mut(1).set_failure_rate(rate);
            let store = build_object_store(tb.mem(1), server, 1, payload);
            let mut samples = Samples::new();
            for _ in 0..iters {
                let watch = tb.add_watch(0, client_buf, u64::from(osize));
                let t0 = tb.now();
                tb.post(
                    0,
                    1,
                    WorkRequest::Rpc {
                        rpc_op: RpcOpCode::CONSISTENCY,
                        params: ConsistencyParams {
                            object_addr: store.object_addrs[0],
                            object_len: osize,
                            target_address: client_buf,
                        }
                        .encode(),
                    },
                );
                let t1 = tb.run_until_watch(watch);
                samples.record(t1 - t0);
                tb.run_until_idle();
            }
            strom_means.push(samples.summarize().expect("samples").mean_us());
            totals.absorb(&tb);
        }
        fig = fig.push_series(Series::new(
            format!("StRoM: {}", size_label(osize)),
            strom_means,
        ));
    }
    fig.push_note(totals.note())
}
