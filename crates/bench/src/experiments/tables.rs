//! Tables: the op-code table (Table 1), the resource usage table
//! (Table 3), and the §6.1 resource statements.

use strom_resources::{DesignConfig, Device, ResourceModel, Usage};
use strom_sim::report::render_table;
use strom_wire::opcode::Opcode;

/// Table 1: the five StRoM BTH op-codes, printed from the codec itself.
pub fn table1() -> String {
    let mut rows: Vec<(String, Vec<String>)> = Opcode::ALL
        .iter()
        .filter(|o| o.is_strom_extension())
        .map(|o| {
            let verb = if *o == Opcode::RpcParams {
                "RPC"
            } else {
                "RPC WRITE"
            };
            (
                format!("{:05b}", *o as u8),
                vec![verb.to_string(), o.name().to_string()],
            )
        })
        .collect();
    rows.push((
        "11101-11111".to_string(),
        vec![String::new(), "reserved".to_string()],
    ));
    render_table(
        "Table 1: Reliable Extended Transport Header op-codes for StRoM kernels",
        &["verb", "description"],
        &rows,
    )
}

fn usage_row(u: &Usage) -> Vec<String> {
    vec![
        format!("{}K", u.luts / 1000),
        format!("{:.1}%", u.lut_fraction * 100.0),
        format!("{}", u.bram36),
        format!("{:.1}%", u.bram_fraction * 100.0),
        format!("{}K", u.ffs / 1000),
        format!("{:.1}%", u.ff_fraction * 100.0),
    ]
}

/// Table 3: resource usage of StRoM for 500 QPs on the VCU118.
pub fn table3() -> String {
    let m = ResourceModel::new();
    let d = Device::xcvu9p();
    let u10 = m.estimate(&DesignConfig::ten_gig(), d);
    let u100 = m.estimate(&DesignConfig::hundred_gig(), d);
    render_table(
        "Table 3: resource usage of StRoM for 500 QPs on VCU118",
        &["LUTs", "%", "BRAMs", "%", "FFs", "%"],
        &[
            ("10 G".to_string(), usage_row(&u10)),
            ("100 G".to_string(), usage_row(&u100)),
        ],
    )
}

/// §6.1: the Virtex-7 percentages and the QP-count scaling claim.
pub fn sec61() -> String {
    let m = ResourceModel::new();
    let d = Device::xc7vx690t();
    let u500 = m.estimate(&DesignConfig::ten_gig(), d);
    let mut cfg16k = DesignConfig::ten_gig();
    cfg16k.num_qps = 16_000;
    let u16k = m.estimate(&cfg16k, d);
    let table = render_table(
        "Sec 6.1: StRoM 10G on the XC7VX690T (paper: 24% logic, 9% BRAM at \
         500 QPs; <1% more logic, 20% BRAM at 16,000 QPs)",
        &["LUTs", "%", "BRAMs", "%", "FFs", "%"],
        &[
            ("500 QPs".to_string(), usage_row(&u500)),
            ("16,000 QPs".to_string(), usage_row(&u16k)),
        ],
    );
    format!(
        "{table}logic growth 500 -> 16,000 QPs: {:.2} percentage points\n",
        (u16k.lut_fraction - u500.lut_fraction) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_exactly_five_opcodes_plus_reserved() {
        let t = table1();
        assert!(t.contains("11000"));
        assert!(t.contains("11100"));
        assert!(t.contains("reserved"));
        assert!(t.contains("RDMA RPC Params"));
        assert!(t.contains("RDMA RPC WRITE Only"));
    }

    #[test]
    fn table3_contains_paper_magnitudes() {
        let t = table3();
        assert!(t.contains("10 G"));
        assert!(t.contains("100 G"));
    }

    #[test]
    fn sec61_reports_scaling() {
        let t = sec61();
        assert!(t.contains("16,000 QPs"));
        assert!(t.contains("logic growth"));
    }
}
