//! Chained kernel pipelines on the cluster testbed (§8's "chaining
//! kernels" outlook): filter → aggregate → HLL and CRC-verify → shuffle.
//!
//! Each point is one [`run_filter_agg_hll`] / [`run_crcverify_shuffle`]
//! invocation: the chain is deployed as a single fabric kernel on the
//! server NIC, configured with one RPC carrying every stage's params,
//! and fed one RPC WRITE stream whose tuples flow stage to stage through
//! the chain's in-fabric `Forward` routing — no host round trips between
//! stages. Every run is verified end to end against host references
//! (filter summary, aggregate record, HLL registers, partition bytes,
//! CRC verdict) before its throughput is quoted, and the corrupt column
//! shows the in-band `ERR_*` sentinel path: a flipped payload byte
//! surfaces as `ERR_INCONSISTENT` at the client while the downstream
//! shuffle stage is starved.
//!
//! The two tuned points are shared with the `wire_micro` binary via
//! [`spec`], so `BENCH_wire.json`'s `chain_*_gibps` gates and this
//! figure measure the same runs.

use strom_nic::{run_crcverify_shuffle, run_filter_agg_hll, ChainRun, ChainSpec};
use strom_sim::report::{render_table, Figure, Series};
use strom_sim::{default_workers, parallel_map};

use super::Scale;

/// Base seed; each swept point folds its tuple count in so points are
/// independent draws.
pub const SEED: u64 = 0xC4A1_0001;

/// The tuple-count axis (8 B per tuple).
pub fn tuple_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Full => vec![1_000, 4_000, 16_000, 64_000, 256_000],
    }
}

/// The tuned throughput point quoted in `BENCH_wire.json`: large enough
/// that per-stream setup amortizes, small enough for a CI smoke run.
pub fn bench_tuples(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 16_000,
        Scale::Full => 64_000,
    }
}

/// The spec for one swept point. Shared with `wire_micro` so the JSON
/// gates and the figure measure the same runs.
pub fn spec(tuples: usize) -> ChainSpec {
    ChainSpec::new(tuples, SEED ^ tuples as u64)
}

fn gbps(run: &ChainRun) -> f64 {
    // GiB/s of payload through the chain, in simulated time.
    run.gib_per_sec
}

/// Runs the kernel-chain experiment and renders its figure.
pub fn run(scale: Scale) -> String {
    let counts = tuple_counts(scale);
    // Both chains at every size, fanned out across workers; each run
    // self-verifies against host references before reporting.
    let runs = parallel_map(counts.clone(), default_workers(), |tuples| {
        let s = spec(tuples);
        (run_filter_agg_hll(&s), run_crcverify_shuffle(&s))
    });

    let ticks: Vec<String> = counts.iter().map(|t| format!("{t}")).collect();
    let fah: Vec<f64> = runs.iter().map(|(a, _)| gbps(a)).collect();
    let cvs: Vec<f64> = runs.iter().map(|(_, b)| gbps(b)).collect();
    let retx: u64 = runs
        .iter()
        .map(|(a, b)| a.retransmissions + b.retransmissions)
        .sum();

    let throughput = Figure::new(
        "Chained kernels: payload throughput vs input size",
        "tuples",
        ticks,
        "GiB/s",
    )
    .push_series(Series::new("filter → aggregate → HLL", fah))
    .push_series(Series::new("CRC-verify → shuffle", cvs))
    .push_note(format!(
        "every run verified end to end against host references; retransmissions={retx}"
    ))
    .render();

    // The in-band error path: the same stream with one flipped payload
    // byte must surface ERR_INCONSISTENT and starve the shuffle stage.
    let clean = spec(bench_tuples(scale));
    let mut corrupt = clean.clone();
    corrupt.corrupt = true;
    let pair = parallel_map(vec![clean, corrupt], default_workers(), |s| {
        run_crcverify_shuffle(&s)
    });
    let fmt_err = |r: &ChainRun| match r.error_code {
        Some(code) => format!("ERR({code})"),
        None => "clean".to_string(),
    };
    let sentinel = render_table(
        "CRC-verify → shuffle: in-band error propagation",
        &["verdict", "payload MiB", "retx"],
        &[
            (
                "clean stream".to_string(),
                vec![
                    fmt_err(&pair[0]),
                    format!("{:.2}", pair[0].payload_bytes as f64 / (1 << 20) as f64),
                    pair[0].retransmissions.to_string(),
                ],
            ),
            (
                "1 flipped byte".to_string(),
                vec![
                    fmt_err(&pair[1]),
                    format!("{:.2}", pair[1].payload_bytes as f64 / (1 << 20) as f64),
                    pair[1].retransmissions.to_string(),
                ],
            ),
        ],
    );

    format!("{throughput}\n{sentinel}")
}
