//! The `figures corpus` entry point: runs the declarative workload
//! corpus — every scenario family at both 10 G and 100 G — writes the
//! machine-readable `CORPUS.json` report (schema `strom-corpus-v1`),
//! and fails loudly on any fingerprint drift, perf-gate violation, or
//! failed cross-platform check.
//!
//! After an *intentional* behaviour change (wire format, timing model,
//! scheduler order), re-pin the fingerprints with:
//!
//! ```text
//! STROM_BLESS=1 cargo run --release -p strom-bench --bin figures -- corpus
//! ```
//!
//! which merges this run's digests into
//! `crates/nic/tests/golden/corpus.fingerprints` instead of checking
//! them. `--full` folds three derived seeds per case (and is pinned
//! separately from `--quick`).

use std::fmt::Write as _;

use strom_nic::corpus::{run_corpus, CorpusReport, CorpusScale};

use super::Scale;

/// Where the report lands, relative to the working directory.
pub const REPORT_PATH: &str = "CORPUS.json";

fn render(report: &CorpusReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Workload corpus ({} scale, {} cases, {} cross-checks)\n",
        report.scale.name(),
        report.cases.len(),
        report.cross_checks.len()
    );
    let _ = writeln!(
        out,
        "{:<32} {:>10} {:>12} {:>18}  status",
        "case", "elapsed", "gates", "fingerprint"
    );
    for case in &report.cases {
        let elapsed = case.perf("elapsed_us").unwrap_or(0.0);
        let gates_held = case.gates.iter().filter(|g| g.pass).count();
        let status = if case.pass() {
            "ok"
        } else if !case.fingerprint_ok() {
            "FINGERPRINT DRIFT"
        } else {
            "GATE VIOLATION"
        };
        let _ = writeln!(
            out,
            "{:<32} {:>8.1}us {:>9}/{:<2} {:#018x}  {}",
            case.id(),
            elapsed,
            gates_held,
            case.gates.len(),
            case.fingerprint,
            status
        );
    }
    out.push('\n');
    for c in &report.cross_checks {
        let _ = writeln!(
            out,
            "cross-check [{}] {}: {:.1} < {:.1} — {}",
            c.kind,
            c.label,
            c.lhs,
            c.rhs,
            if c.pass { "ok" } else { "FAILED" }
        );
    }
    out
}

/// Runs the corpus at `scale`, writes [`REPORT_PATH`], and panics with
/// the itemized failure list unless every case passes (or `STROM_BLESS`
/// is set, in which case this run's fingerprints become the goldens).
pub fn run(scale: Scale) -> String {
    let corpus_scale = match scale {
        Scale::Quick => CorpusScale::Quick,
        Scale::Full => CorpusScale::Full,
    };
    let report = run_corpus(corpus_scale);
    std::fs::write(REPORT_PATH, report.to_json()).expect("write CORPUS.json");
    let mut out = render(&report);
    if std::env::var_os("STROM_BLESS").is_some() {
        let path = report.bless().expect("write corpus goldens");
        let _ = writeln!(
            out,
            "\nblessed {} fingerprints ({} scale) -> {}",
            report.cases.len(),
            report.scale.name(),
            path.display()
        );
        return out;
    }
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "corpus gate failed ({} failure(s); full report in {REPORT_PATH}):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    let _ = writeln!(out, "\ncorpus gate: all {} cases pass", report.cases.len());
    out
}
