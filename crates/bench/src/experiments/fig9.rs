//! Figure 9: latency of reading a remote value with and without a
//! consistency check (§6.3).
//!
//! Three lines: plain "READ", "READ+SW" (CRC64 on a client CPU core), and
//! "StRoM" (the consistency kernel verifying on the remote NIC). The
//! paper's findings: software CRC64 costs up to 40 % at 4 KB while the
//! kernel costs ≈1 µs (<8 %).

use strom_baselines::{OneSidedClient, SwCrcModel};
use strom_kernels::consistency::{ConsistencyKernel, ConsistencyParams};
use strom_kernels::layouts::build_object_store;
use strom_nic::{RpcOpCode, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::Samples;
use strom_sim::{default_workers, parallel_map};

use super::{testbed_10g, Scale};

/// Object sizes of the figure (total object bytes, 64 B – 4 KB).
pub const OBJECT_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn size_label(bytes: u32) -> String {
    if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Runs the three approaches across object sizes.
///
/// Each object size builds its own testbeds, so size points fan out
/// across threads and merge back in size order — the per-point medians
/// are independent deterministic simulations, identical to a sequential
/// sweep.
pub fn run(scale: Scale) -> Figure {
    let iters = scale.iterations();
    let points = parallel_map(OBJECT_SIZES.to_vec(), default_workers(), |osize| {
        let payload = osize - 8; // 8 B inline CRC header.

        // Shared testbed for READ and READ+SW (same client).
        let mut tb = testbed_10g();
        let scratch = tb.pin(0, 4 << 20);
        let server = tb.pin(1, 4 << 20);
        let store = build_object_store(tb.mem(1), server, 1, payload);
        let addr = store.object_addrs[0];
        let mut client = OneSidedClient::new(0, 1, scratch, 4 << 20);

        // --- plain READ ---
        let mut samples = Samples::new();
        for _ in 0..iters {
            let t0 = tb.now();
            let (_, t1) = client.read_blocking(&mut tb, addr, osize);
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        let read = samples.summarize().expect("samples").median_us();

        // --- READ + software CRC64 ---
        let model = SwCrcModel::new();
        let mut samples = Samples::new();
        for _ in 0..iters {
            let t0 = tb.now();
            let (obj, t1, attempts) = model.verified_read(&mut tb, &mut client, addr, osize, 4);
            assert_eq!(attempts, 1, "uncorrupted object verifies first try");
            assert!(!obj.is_empty());
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        let read_sw = samples.summarize().expect("samples").median_us();

        // --- StRoM consistency kernel ---
        let mut tb = testbed_10g();
        let client_buf = tb.pin(0, 4 << 20);
        let server = tb.pin(1, 4 << 20);
        tb.deploy_kernel(1, Box::new(ConsistencyKernel::new()));
        let store = build_object_store(tb.mem(1), server, 1, payload);
        let mut samples = Samples::new();
        for _ in 0..iters {
            let watch = tb.add_watch(0, client_buf, u64::from(osize));
            let t0 = tb.now();
            tb.post(
                0,
                1,
                WorkRequest::Rpc {
                    rpc_op: RpcOpCode::CONSISTENCY,
                    params: ConsistencyParams {
                        object_addr: store.object_addrs[0],
                        object_len: osize,
                        target_address: client_buf,
                    }
                    .encode(),
                },
            );
            let t1 = tb.run_until_watch(watch);
            samples.record(t1 - t0);
            tb.run_until_idle();
        }
        (
            read,
            read_sw,
            samples.summarize().expect("samples").median_us(),
        )
    });
    let mut read_med = Vec::new();
    let mut read_sw_med = Vec::new();
    let mut strom_med = Vec::new();
    for (read, read_sw, strom) in points {
        read_med.push(read);
        read_sw_med.push(read_sw);
        strom_med.push(strom);
    }

    Figure::new(
        "Fig 9: remote read with consistency check",
        "object size",
        OBJECT_SIZES.iter().map(|&s| size_label(s)).collect(),
        "us",
    )
    .push_series(Series::new("READ", read_med))
    .push_series(Series::new("READ+SW", read_sw_med))
    .push_series(Series::new("StRoM", strom_med))
}
