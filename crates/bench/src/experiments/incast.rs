//! N→1 incast under DCQCN: tail latency vs offered load, survival at
//! scale, and elephant/mice fairness.
//!
//! The canonical congestion benchmark the switched cluster's congestion
//! control exists to pass: N senders hammer one receiver through a
//! single egress port, with the per-sender window of outstanding 8 KiB
//! WRITEs as the offered-load axis. Every run is a checked
//! [`run_incast`] (survivor payloads verified byte-exact), and the
//! tuned operating point — the one CI holds to ≈ 0 tail drops — is
//! shared with the `wire_micro` binary via [`spec`] so `BENCH_wire.json`
//! and these figures measure the same runs.

use strom_nic::cluster_incast::{run_incast, run_incast_instrumented, IncastOutcome, IncastSpec};
use strom_nic::SwitchParams;
use strom_sim::report::{Figure, Series};
use strom_sim::time::{MICROS, NANOS};
use strom_sim::{Bandwidth, EcnConfig};
use strom_telemetry::TelemetryReport;

use super::Scale;

/// Sender counts on the survival curve (the receiver is one more node).
pub const SENDER_COUNTS: [usize; 3] = [4, 8, 16];

/// The tuned operating point's per-sender window: deep enough that the
/// aggregate overloads the egress port (so ECN marking and rate cuts
/// engage), shallow enough that the line-rate burst in flight before the
/// first CNPs land fits the switch buffer even at N = 16.
pub const TUNED_WINDOW: usize = 2;

/// Offered-load axis: per-sender windows swept by the latency figure.
pub fn windows(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 16],
    }
}

/// The congested fabric every incast point runs through: 10 G ports, a
/// 256-frame shared-tail egress buffer, and (with `cc`) a step marker at
/// 16 frames — 1/16 of the buffer, low because a CE mark decided at
/// enqueue must ride the whole queue before the responder can echo it.
fn congested_switch(cc: bool, seed: u64) -> SwitchParams {
    SwitchParams {
        port_rate: Some(Bandwidth::gbit_per_sec(10.0)),
        latency: 500 * NANOS,
        egress_capacity: 256,
        ecn: cc.then(|| {
            let mut ecn = EcnConfig::step(16);
            ecn.seed = seed ^ 0xECF;
            ecn
        }),
    }
}

/// The spec for one incast point. Shared with the `wire_micro` binary so
/// `BENCH_wire.json` and the figure report measure the same runs.
pub fn spec(senders: usize, window: usize, scale: Scale, cc: bool) -> IncastSpec {
    let mut spec = IncastSpec::new(senders, window, 0x1CA_5000 + senders as u64);
    spec.messages_per_sender = match scale {
        Scale::Quick => 12,
        Scale::Full => 48,
    };
    spec.cc = cc;
    spec.switch = congested_switch(cc, spec.seed);
    // Deep-queue operating points park hundreds of microseconds of
    // frames on the egress port; the timeout must sit above that delay
    // or every queued frame turns into a spurious go-back-N storm.
    spec.retransmit_timeout = Some(1_000 * MICROS);
    spec
}

/// The elephant/mice fairness point: two elephants at `boost`× the
/// window and data volume of six mice, same congested fabric.
pub fn fairness_spec(boost: usize, scale: Scale, cc: bool) -> IncastSpec {
    let mut spec = spec(8, 2, scale, cc);
    spec.seed ^= 0xE1E;
    spec.elephants = 2;
    spec.elephant_boost = boost;
    spec
}

fn us(ps: Option<u64>) -> Option<f64> {
    ps.map(|p| p as f64 / 1e6)
}

/// Renders the three incast figures; the tuned N = 8 point is run
/// instrumented and its registry (per-port queue-depth high watermarks,
/// ECN mark counters) becomes the experiment's telemetry report.
pub fn run_with_telemetry(scale: Scale) -> (String, TelemetryReport) {
    // Figure 1: completion-latency quantiles vs offered load at N = 8,
    // with the no-CC p999 for contrast.
    let wins = windows(scale);
    let ticks: Vec<String> = wins.iter().map(|w| w.to_string()).collect();
    let mut p50 = Vec::new();
    let mut p99 = Vec::new();
    let mut p999 = Vec::new();
    let mut p999_off = Vec::new();
    let mut cc_drops = 0u64;
    let mut cc_marks = 0u64;
    let mut cc_errors = 0usize;
    let mut off_drops = 0u64;
    let mut off_errors = 0usize;
    for &w in &wins {
        let on = run_incast(&spec(8, w, scale, true));
        let off = run_incast(&spec(8, w, scale, false));
        p50.push(us(on.p50_ps));
        p99.push(us(on.p99_ps));
        p999.push(us(on.p999_ps));
        p999_off.push(us(off.p999_ps));
        cc_drops += on.tail_drops;
        cc_marks += on.ecn_marked;
        cc_errors += on.qp_errors;
        off_drops += off.tail_drops;
        off_errors += off.qp_errors;
    }
    let latency = Figure::new(
        "Incast 8:1: WRITE completion latency vs offered load (window of 8 KiB messages)",
        "window",
        ticks,
        "us",
    )
    .push_series(Series::with_gaps("DCQCN p50", p50))
    .push_series(Series::with_gaps("DCQCN p99", p99))
    .push_series(Series::with_gaps("DCQCN p999", p999))
    .push_series(Series::with_gaps("no CC p999", p999_off))
    .push_note(format!(
        "DCQCN: tail_drops={cc_drops} ecn_marked={cc_marks} qp_errors={cc_errors}; \
         no CC: tail_drops={off_drops} qp_errors={off_errors}"
    ));

    // Figure 2: survival at the tuned window as the fan-in grows, the
    // N = 8 point instrumented for the telemetry export.
    let ticks: Vec<String> = SENDER_COUNTS.iter().map(|n| n.to_string()).collect();
    let mut report = TelemetryReport::new("incast");
    let mut tuned: Vec<(usize, IncastOutcome)> = Vec::new();
    for &n in &SENDER_COUNTS {
        let point = spec(n, TUNED_WINDOW, scale, true);
        let out = if n == 8 {
            let (out, metrics) = run_incast_instrumented(&point);
            report = report.with_registry(&metrics);
            out
        } else {
            run_incast(&point)
        };
        tuned.push((n, out));
    }
    let survival = Figure::new(
        "Incast N:1 at the tuned operating point (DCQCN, window 2)",
        "senders",
        ticks,
        "us",
    )
    .push_series(Series::with_gaps(
        "p99",
        tuned.iter().map(|(_, o)| us(o.p99_ps)).collect(),
    ))
    .push_series(Series::with_gaps(
        "p999",
        tuned.iter().map(|(_, o)| us(o.p999_ps)).collect(),
    ))
    .push_note(
        tuned
            .iter()
            .map(|(n, o)| {
                format!(
                    "N={n}: goodput={:.2} Gbit/s drops={} marks={} cnps={} qp_errors={}",
                    o.goodput_gbps, o.tail_drops, o.ecn_marked, o.cnps, o.qp_errors
                )
            })
            .collect::<Vec<_>>()
            .join("; "),
    );

    // Figure 3: elephant/mice fairness (Jain's index, 1.0 = every flow
    // got an equal share) as the elephants grow hungrier.
    let boosts = [2usize, 4, 8];
    let ticks: Vec<String> = boosts.iter().map(|b| format!("{b}x")).collect();
    let mut jain_on = Vec::new();
    let mut jain_off = Vec::new();
    for &b in &boosts {
        jain_on.push(run_incast(&fairness_spec(b, scale, true)).jain);
        jain_off.push(run_incast(&fairness_spec(b, scale, false)).jain);
    }
    let fairness = Figure::new(
        "Elephant/mice fairness: Jain's index vs elephant window boost (2 elephants, 6 mice)",
        "boost",
        ticks,
        "Jain",
    )
    .push_series(Series::new("DCQCN", jain_on))
    .push_series(Series::new("no CC", jain_off));

    (
        format!(
            "{}\n{}\n{}",
            latency.render(),
            survival.render(),
            fairness.render()
        ),
        report,
    )
}

/// Renders the incast figures (the registry export is dropped).
pub fn run(scale: Scale) -> String {
    run_with_telemetry(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the tuned operating point: an 8:1 incast
    /// under DCQCN completes with zero terminal QP errors, zero tail
    /// drops, and a p999 bounded well below the retransmission timeout.
    #[test]
    fn tuned_point_survives_eight_to_one() {
        let out = run_incast(&spec(8, TUNED_WINDOW, Scale::Quick, true));
        assert_eq!(out.qp_errors, 0);
        assert_eq!(out.tail_drops, 0);
        assert!(out.ecn_marked > 0, "overload must engage the marker");
        let p999 = out.p999_ps.expect("completions recorded");
        assert!(
            p999 < 1_000 * MICROS,
            "p999 = {} us exceeds the retransmit timeout",
            p999 / MICROS
        );
    }
}
