//! Cluster shuffle scaling: §6.4's shuffle scaled out over the switched
//! cluster, N = 2, 4, 8.
//!
//! Every node hash-partitions its local table by destination node and
//! streams each bucket to the owning peer as RDMA RPC WRITEs through
//! that peer's on-NIC shuffle kernel; all N·(N−1) flows contend for the
//! same store-and-forward switch concurrently. Each point runs twice —
//! fault-free and with Bernoulli loss on every link — and
//! [`run_shuffle`] verifies byte-exact, exactly-once delivery
//! internally, so every number reported here comes from a checked run.

use strom_nic::cluster_shuffle::{run_shuffle, ShuffleSpec};
use strom_nic::LinkFaultModel;
use strom_sim::report::{Figure, Series};
use strom_sim::time::MICROS;

use super::Scale;

/// Node counts on the scaling curve.
pub const NODE_COUNTS: [usize; 3] = [2, 4, 8];

/// Per-link loss rate of the faulted series: high enough that every
/// scaling point (including quick-scale N = 2, ~100 frames) actually
/// loses frames and recovers them via retransmission.
pub const LOSS_RATE: f64 = 0.02;

/// The spec for one scaling point. Shared with the `wire_micro` binary
/// so `BENCH_wire.json` and the figure report measure the same runs.
pub fn spec(nodes: usize, scale: Scale, lossy: bool) -> ShuffleSpec {
    let values_per_node = match scale {
        Scale::Quick => 16 * 1024,
        Scale::Full => 128 * 1024,
    };
    let mut spec = ShuffleSpec::new(nodes, values_per_node, 0x5CA_1E00 + nodes as u64);
    spec.local_partitions = 64;
    // A deep-buffered fabric: the all-to-all incast parks up to
    // (N−1) flows' worth of frames on one egress port, and the default
    // shallow 64-frame queue would congestion-collapse into tail-drop /
    // go-back-N duplicate storms. 1024 frames absorbs the worst-case
    // burst (~766 us of queueing at 10G); the retransmission timeout
    // must sit above that delay or every queued frame turns into a
    // spurious duplicate.
    spec.switch.egress_capacity = 1024;
    spec.retransmit_timeout = Some(1_000 * MICROS);
    if lossy {
        spec.fault = LinkFaultModel::bernoulli(LOSS_RATE);
    }
    spec
}

/// Aggregate shuffle throughput and p99 RPC completion latency vs node
/// count, rendered as two figures over the same x axis.
pub fn run(scale: Scale) -> String {
    let ticks: Vec<String> = NODE_COUNTS.iter().map(|n| n.to_string()).collect();
    let lossy_label = format!("{}% loss", LOSS_RATE * 100.0);
    let mut tput = [Vec::new(), Vec::new()];
    let mut p99 = [Vec::new(), Vec::new()];
    let (mut drops, mut retx) = (0u64, 0u64);
    for (i, lossy) in [false, true].into_iter().enumerate() {
        for &n in &NODE_COUNTS {
            let out = run_shuffle(&spec(n, scale, lossy));
            tput[i].push(out.aggregate_gbps);
            p99[i].push(out.p99_rpc_ps.map(|ps| ps as f64 / 1e6));
            if lossy {
                drops += out.tail_drops;
                retx += out.retransmissions;
            }
        }
    }
    let throughput = Figure::new(
        "Shuffle scaling: aggregate all-to-all throughput (10G switched cluster)",
        "nodes",
        ticks.clone(),
        "GB/s",
    )
    .push_series(Series::new("fault-free", tput[0].clone()))
    .push_series(Series::new(lossy_label.clone(), tput[1].clone()));
    let latency = Figure::new(
        "Shuffle scaling: p99 RPC WRITE completion latency",
        "nodes",
        ticks,
        "us",
    )
    .push_series(Series::with_gaps("fault-free", p99[0].clone()))
    .push_series(Series::with_gaps(lossy_label, p99[1].clone()))
    .push_note(format!(
        "lossy series: tail_drops={drops} retransmissions={retx}; \
         every run verified byte-exact, exactly-once"
    ));
    format!("{}\n{}", throughput.render(), latency.render())
}
