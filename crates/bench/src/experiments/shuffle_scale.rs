//! Cluster shuffle scaling: §6.4's shuffle scaled out over the switched
//! cluster, N = 2, 4, 8.
//!
//! Every node hash-partitions its local table by destination node and
//! streams each bucket to the owning peer as RDMA RPC WRITEs through
//! that peer's on-NIC shuffle kernel; all N·(N−1) flows contend for the
//! same store-and-forward switch concurrently. Each point runs twice —
//! fault-free and with Bernoulli loss on every link — and
//! [`run_shuffle`] verifies byte-exact, exactly-once delivery
//! internally, so every number reported here comes from a checked run.

use strom_nic::cluster_shuffle::{run_shuffle, ShuffleSpec};
use strom_nic::LinkFaultModel;
use strom_sim::report::{Figure, Series};
use strom_sim::time::MICROS;
use strom_sim::EcnConfig;

use super::Scale;

/// Node counts on the scaling curve.
pub const NODE_COUNTS: [usize; 3] = [2, 4, 8];

/// Per-link loss rate of the faulted series: high enough that every
/// scaling point (including quick-scale N = 2, ~100 frames) actually
/// loses frames and recovers them via retransmission.
pub const LOSS_RATE: f64 = 0.02;

/// The spec for one scaling point. Shared with the `wire_micro` binary
/// so `BENCH_wire.json` and the figure report measure the same runs.
pub fn spec(nodes: usize, scale: Scale, lossy: bool) -> ShuffleSpec {
    let values_per_node = match scale {
        Scale::Quick => 16 * 1024,
        Scale::Full => 128 * 1024,
    };
    let mut spec = ShuffleSpec::new(nodes, values_per_node, 0x5CA_1E00 + nodes as u64);
    spec.local_partitions = 64;
    // A deep-buffered fabric: the all-to-all incast parks up to
    // (N−1) flows' worth of frames on one egress port, and the default
    // shallow 64-frame queue would congestion-collapse into tail-drop /
    // go-back-N duplicate storms. 1024 frames absorbs the worst-case
    // burst (~766 us of queueing at 10G); the retransmission timeout
    // must sit above that delay or every queued frame turns into a
    // spurious duplicate.
    spec.switch.egress_capacity = 1024;
    spec.retransmit_timeout = Some(1_000 * MICROS);
    if lossy {
        spec.fault = LinkFaultModel::bernoulli(LOSS_RATE);
    }
    spec
}

/// The congestion-control comparison point: the same lossy shuffle on a
/// *shallow*-buffered fabric (32 frames — the all-to-all incast bursts
/// well past it), with or without DCQCN. Without CC the overflow feeds
/// tail-drop / go-back-N storms; with CC the marker holds the queue
/// short, so both the drops and the loss-amplified retransmissions
/// collapse. Shared with `wire_micro`, which records and gates the
/// improvement ratio in `BENCH_wire.json`.
pub fn cc_spec(nodes: usize, scale: Scale, cc: bool) -> ShuffleSpec {
    let mut spec = spec(nodes, scale, true);
    // Fixed input size regardless of scale: the pair is a gate (CI
    // asserts the improvement ratio), so the operating point must not
    // move between quick and full runs. ~64 KiB per flow at N = 8 keeps
    // each egress port's incast burst far beyond the shallow buffer.
    spec.values_per_node = 64 * 1024;
    spec.switch.egress_capacity = 32;
    spec.cc = cc;
    if cc {
        let mut ecn = EcnConfig::step(8);
        ecn.seed = spec.seed ^ 0xECF;
        spec.switch.ecn = Some(ecn);
    }
    spec
}

/// The deep-buffer lossy spec with DCQCN switched on (marking at 64 of
/// the 1024-frame buffer), for the CC-enabled scaling series.
fn cc_deep_spec(nodes: usize, scale: Scale) -> ShuffleSpec {
    let mut spec = spec(nodes, scale, true);
    spec.cc = true;
    let mut ecn = EcnConfig::step(64);
    ecn.seed = spec.seed ^ 0xECF;
    spec.switch.ecn = Some(ecn);
    spec
}

/// Aggregate shuffle throughput and p99 RPC completion latency vs node
/// count, rendered as two figures over the same x axis: fault-free,
/// 2% loss, and 2% loss with DCQCN enabled.
pub fn run(scale: Scale) -> String {
    let ticks: Vec<String> = NODE_COUNTS.iter().map(|n| n.to_string()).collect();
    let lossy_label = format!("{}% loss", LOSS_RATE * 100.0);
    let cc_label = format!("{lossy_label} + DCQCN");
    let mut tput = [Vec::new(), Vec::new(), Vec::new()];
    let mut p99 = [Vec::new(), Vec::new(), Vec::new()];
    let (mut drops, mut retx) = (0u64, 0u64);
    let (mut cc_drops, mut cc_retx) = (0u64, 0u64);
    for (i, variant) in ["clean", "lossy", "cc"].into_iter().enumerate() {
        for &n in &NODE_COUNTS {
            let out = match variant {
                "clean" => run_shuffle(&spec(n, scale, false)),
                "lossy" => run_shuffle(&spec(n, scale, true)),
                _ => run_shuffle(&cc_deep_spec(n, scale)),
            };
            tput[i].push(out.aggregate_gbps);
            p99[i].push(out.p99_rpc_ps.map(|ps| ps as f64 / 1e6));
            if variant == "lossy" {
                drops += out.tail_drops;
                retx += out.retransmissions;
            } else if variant == "cc" {
                cc_drops += out.tail_drops;
                cc_retx += out.retransmissions;
            }
        }
    }
    let throughput = Figure::new(
        "Shuffle scaling: aggregate all-to-all throughput (10G switched cluster)",
        "nodes",
        ticks.clone(),
        "GB/s",
    )
    .push_series(Series::new("fault-free", tput[0].clone()))
    .push_series(Series::new(lossy_label.clone(), tput[1].clone()))
    .push_series(Series::new(cc_label.clone(), tput[2].clone()));
    let latency = Figure::new(
        "Shuffle scaling: p99 RPC WRITE completion latency",
        "nodes",
        ticks,
        "us",
    )
    .push_series(Series::with_gaps("fault-free", p99[0].clone()))
    .push_series(Series::with_gaps(lossy_label, p99[1].clone()))
    .push_series(Series::with_gaps(cc_label, p99[2].clone()))
    .push_note(format!(
        "lossy series: tail_drops={drops} retransmissions={retx}; \
         with DCQCN: tail_drops={cc_drops} retransmissions={cc_retx}; \
         every run verified byte-exact, exactly-once"
    ));
    format!("{}\n{}", throughput.render(), latency.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the CC comparison pair: on the shallow
    /// fabric at 2% loss, enabling DCQCN cuts both switch tail drops and
    /// retransmissions at least 5×.
    #[test]
    fn dcqcn_collapses_drops_and_retransmission_storms() {
        let off = run_shuffle(&cc_spec(8, Scale::Quick, false));
        let on = run_shuffle(&cc_spec(8, Scale::Quick, true));
        assert!(
            off.tail_drops >= 5 * on.tail_drops.max(1),
            "tail drops: {} (no CC) vs {} (DCQCN)",
            off.tail_drops,
            on.tail_drops
        );
        assert!(
            off.retransmissions >= 5 * on.retransmissions.max(1),
            "retransmissions: {} (no CC) vs {} (DCQCN)",
            off.retransmissions,
            on.retransmissions
        );
    }
}
