//! Figure 13: HyperLogLog on the CPU versus on StRoM (§7.2).
//!
//! Fig 13a: the CPU (i7-7700) computes HLL while StRoM delivers data —
//! memory-bound, needing 8 threads for ~25 Gbit/s. Fig 13b: the HLL
//! kernel on the 100 G NIC processes the stream as a bump-in-the-wire
//! with **no overhead** over a plain RDMA WRITE.

use strom_baselines::CpuHllModel;
use strom_kernels::hll_kernel::HllKernel;
use strom_nic::{RpcOpCode, WorkRequest};
use strom_sim::report::{Figure, Series};
use strom_sim::stats::goodput_gbps;
use strom_sim::SimRng;

use super::{testbed_100g, Scale};

/// Thread counts of Fig 13a.
pub const THREADS: [u32; 4] = [1, 2, 4, 8];

/// Payload sizes of Fig 13b (2^6 – 2^14 B).
pub fn payload_sizes() -> Vec<u32> {
    (6..=14).step_by(2).map(|e| 1u32 << e).collect()
}

/// Fig 13a: the calibrated CPU model (the paper's measured points are
/// 4.64 / 9.28 / 18.40 / 24.40 Gbit/s).
pub fn cpu_hll() -> Figure {
    let model = CpuHllModel::new();
    let series: Vec<f64> = THREADS.iter().map(|&t| model.throughput_gbps(t)).collect();
    Figure::new(
        "Fig 13a: HLL throughput on the CPU (receiving via StRoM)",
        "#threads",
        THREADS.iter().map(|t| t.to_string()).collect(),
        "Gbit/s",
    )
    .push_series(Series::new("CPU HLL", series))
}

/// Fig 13b: plain Write versus Write+HLL at 100 G.
pub fn strom_hll(scale: Scale) -> Figure {
    let sizes = payload_sizes();
    let mut rng = SimRng::seed(0xF13);

    let run_one = |tap: bool, size: u32, rng: &mut SimRng| -> f64 {
        let mut tb = testbed_100g();
        let src = tb.pin(0, 1 << 21);
        let dst = tb.pin(1, 1 << 21);
        if tap {
            tb.deploy_kernel(1, Box::new(HllKernel::new()));
            tb.set_receive_tap(1, RpcOpCode::HLL);
        }
        let mut buf = vec![0u8; size as usize];
        rng.fill_bytes(&mut buf);
        tb.mem(0).write(src, &buf);
        let count = (scale.messages() * 2)
            .min((64 << 20) / size as usize)
            .max(32);
        let t0 = tb.now();
        let mut last = 0;
        for _ in 0..count {
            last = tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst,
                    local_vaddr: src,
                    len: size,
                },
            );
        }
        let t1 = tb.run_until_complete(0, last);
        goodput_gbps(u64::from(size) * count as u64, t0, t1)
    };

    let mut with_hll = Vec::new();
    let mut plain = Vec::new();
    for &size in &sizes {
        with_hll.push(run_one(true, size, &mut rng));
        plain.push(run_one(false, size, &mut rng));
    }

    Figure::new(
        "Fig 13b: HLL as a bump-in-the-wire on the 100G NIC",
        "payload",
        sizes
            .iter()
            .map(|&s| {
                if s >= 1024 {
                    format!("{}KB", s / 1024)
                } else {
                    format!("{s}B")
                }
            })
            .collect(),
        "Gbit/s",
    )
    .push_series(Series::new("StRoM: Write+HLL", with_hll))
    .push_series(Series::new("StRoM: Write", plain))
}
