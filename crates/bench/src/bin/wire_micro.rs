//! Micro-benchmarks of the fast wire datapath, seeding the repo's perf
//! trajectory.
//!
//! Measures the slice-by-16 CRC-32/CRC-64 against their byte-at-a-time
//! references, the single-pass frame encode and zero-copy parse, the
//! per-emission cost of a disabled vs enabled [`TraceSink`], and an
//! end-to-end multi-seed chaos soak (sequential vs parallel) whose
//! completion-latency percentiles come from the testbed's telemetry
//! histograms, then writes the numbers to `BENCH_wire.json` at the repo
//! root so runs are comparable across commits.
//!
//! ```text
//! wire_micro            # full measurement
//! wire_micro --quick    # CI smoke: fewer soak seeds, same JSON shape
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use bytes::Bytes;
use strom_bench::experiments::incast::{
    self, SENDER_COUNTS as INCAST_SENDERS, TUNED_WINDOW as INCAST_WINDOW,
};
use strom_bench::experiments::kernel_chain;
use strom_bench::experiments::kv_serve::{
    self, OVERLOAD_GAP_NS as KV_OVERLOAD_GAP, TUNED_GAP_NS as KV_TUNED_GAP,
};
use strom_bench::experiments::shuffle_scale::{
    cc_spec, spec as shuffle_spec, LOSS_RATE, NODE_COUNTS,
};
use strom_bench::micro::{bb, bench};
use strom_bench::Scale;
use strom_kernels::bloom::BloomFilter;
use strom_kernels::hll::HyperLogLog;
use strom_kernels::topk::{reference_topk, TopKKernel};
use strom_kernels::traversal::Predicate;
use strom_nic::cluster_incast::run_incast;
use strom_nic::cluster_shuffle::run_shuffle;
use strom_nic::kv_serve::run_kv_serve;
use strom_nic::{
    chaos_model, run_crcverify_shuffle, run_filter_agg_hll, run_pdes_cluster,
    run_pdes_cluster_reference, NicConfig, PdesClusterParams, Testbed, WorkRequest,
};
use strom_sim::{parallel_map, EventQueue, ReferenceEventQueue, SimRng};
use strom_telemetry::{Histogram, TraceEvent, TraceSink};
use strom_wire::bth::Reth;
use strom_wire::icrc;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;

/// CRC input size: a jumbo-frame-scale buffer, large enough that table
/// warmup and loop overhead vanish.
const CRC_BYTES: usize = 64 * 1024;

fn sample_packet(payload: usize) -> Packet {
    Packet::new(
        1,
        2,
        Opcode::WriteOnly,
        5,
        100,
        Some(Reth {
            vaddr: 0x1000,
            rkey: 1,
            dma_len: payload as u32,
        }),
        None,
        Bytes::from(vec![0xabu8; payload]),
    )
}

/// Observables of one chaos soak run: a checksum (so the work cannot be
/// optimized away) plus the testbed's completion-latency histograms.
#[derive(Debug, Clone, PartialEq)]
struct SoakResult {
    checksum: u64,
    write_lat: Histogram,
    read_lat: Histogram,
}

/// One independent chaos simulation: a short mixed WRITE/READ workload
/// under the composed fault model for `seed`. With `trace_capacity` the
/// run also records a full event trace, which must not perturb any
/// observable (asserted in `main`).
fn soak_one(seed: u64, ops: u64, trace_capacity: Option<usize>) -> SoakResult {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    if let Some(capacity) = trace_capacity {
        tb.enable_tracing(capacity);
    }
    tb.connect_qp(1);
    tb.set_fault_model(chaos_model(seed));
    let a = tb.pin(0, 2 << 20);
    let b = tb.pin(1, 2 << 20);
    let mut rng = SimRng::seed(seed ^ 0x50ac);
    let mut data = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut data);
    tb.mem(0).write(a, &data);
    tb.mem(1).write(b, &data);
    for _ in 0..ops {
        let off = rng.below(1 << 19);
        let len = rng.range(1, 16_000) as u32;
        let h = if rng.chance(0.5) {
            tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: b + (1 << 20) + off,
                    local_vaddr: a + off,
                    len,
                },
            )
        } else {
            tb.post(
                0,
                1,
                WorkRequest::Read {
                    remote_vaddr: b + off,
                    local_vaddr: a + (1 << 20) + off,
                    len,
                },
            )
        };
        tb.run_until_complete(0, h);
    }
    assert!(
        tb.run_until_idle_bounded(50_000_000),
        "soak failed to quiesce"
    );
    SoakResult {
        checksum: tb.retransmissions(0) ^ tb.status(1).payload_bytes_rx,
        write_lat: tb.metrics().histogram("latency.write_ps").snapshot(),
        read_lat: tb.metrics().histogram("latency.read_ps").snapshot(),
    }
}

/// Payload sized like the testbed's `Event` cap: with the `(at, seq)`
/// envelope a `Scheduled<EnginePayload>` is as big as a scheduled
/// simulation event, so the engines pay realistic move costs.
#[derive(Debug, Clone, Copy)]
struct EnginePayload([u64; 7]);

/// The event-engine API surface the churn loop needs, so the wheel-backed
/// queue and the reference heap run the exact same workload.
trait Engine {
    fn schedule_at(&mut self, at: u64, p: EnginePayload);
    fn pop_one(&mut self) -> Option<(u64, u64, u64)>;
}

impl Engine for EventQueue<EnginePayload> {
    fn schedule_at(&mut self, at: u64, p: EnginePayload) {
        EventQueue::schedule_at(self, at, p);
    }
    fn pop_one(&mut self) -> Option<(u64, u64, u64)> {
        self.pop().map(|s| (s.at, s.seq, s.event.0[0]))
    }
}

impl Engine for ReferenceEventQueue<EnginePayload> {
    fn schedule_at(&mut self, at: u64, p: EnginePayload) {
        ReferenceEventQueue::schedule_at(self, at, p);
    }
    fn pop_one(&mut self) -> Option<(u64, u64, u64)> {
        self.pop().map(|s| (s.at, s.seq, s.event.0[0]))
    }
}

/// Delta to the next scheduled event, shaped like the testbed's mix:
/// mostly sub-2 µs pipeline/link hops, some 2 µs–200 µs timer-scale
/// waits, and a thin 1 s–10 s tail that exercises the overflow heap.
fn engine_delta(rng: &mut SimRng) -> u64 {
    match rng.below(100) {
        0 => rng.range(1_000_000_000, 10_000_000_000),
        1..=9 => rng.range(2_000_000, 200_000_000),
        _ => rng.range(100, 2_000_000),
    }
}

/// Hold-depth-constant churn: prefill from `prefill`, then one
/// pop-one / schedule-one round per delta in `churn` (deltas are
/// precomputed so the timed loop measures the engine, not the RNG).
/// Returns (events/sec, FNV fingerprint of the popped `(at, seq,
/// payload)` stream) — the same deltas on both engines must give the
/// same fingerprint, which is the differential check.
fn engine_churn<Q: Engine>(q: &mut Q, prefill: &[u64], churn: &[u64]) -> (f64, u64) {
    fn mix(fp: &mut u64, v: u64) {
        *fp = (*fp ^ v).wrapping_mul(0x100_0000_01b3);
    }
    for (i, &at) in prefill.iter().enumerate() {
        q.schedule_at(at, EnginePayload([i as u64; 7]));
    }
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    let t = Instant::now();
    for (i, &delta) in churn.iter().enumerate() {
        let (at, seq, word) = q.pop_one().expect("churn holds depth constant");
        mix(&mut fp, at);
        mix(&mut fp, seq);
        mix(&mut fp, word);
        q.schedule_at(at + delta, EnginePayload([i as u64 ^ at; 7]));
    }
    (churn.len() as f64 / t.elapsed().as_secs_f64(), fp)
}

/// Best-of-3 churn for one engine over one workload (fresh queue per
/// run; the best run is the least scheduler-perturbed one).
fn engine_bench<Q: Engine>(make: impl Fn() -> Q, prefill: &[u64], churn: &[u64]) -> (f64, u64) {
    let mut best = (0.0f64, 0u64);
    for run in 0..3 {
        let (eps, fp) = engine_churn(&mut make(), prefill, churn);
        if run == 0 || eps > best.0 {
            best.0 = eps;
        }
        if run == 0 {
            best.1 = fp;
        } else {
            assert_eq!(fp, best.1, "same deltas must give the same stream");
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (soak_seeds, soak_ops) = if quick { (4u64, 4u64) } else { (24, 10) };

    let mut rng = SimRng::seed(0x1234);
    let mut data = vec![0u8; CRC_BYTES];
    rng.fill_bytes(&mut data);

    println!("== CRC-32 (ICRC), {CRC_BYTES} B ==");
    let icrc_ref = bench("icrc_reference", || bb(icrc::icrc_reference(&data)));
    let icrc_s8 = bench("icrc_slice16", || bb(icrc::icrc(&data)));
    assert_eq!(icrc::icrc(&data), icrc::icrc_reference(&data));

    println!("== CRC-64 (ECMA-182), {CRC_BYTES} B ==");
    let crc64_ref = bench("crc64_reference", || {
        bb(strom_kernels::crc64::crc64_reference(&data))
    });
    let crc64_s8 = bench("crc64_slice16", || bb(strom_kernels::crc64::crc64(&data)));
    assert_eq!(
        strom_kernels::crc64::crc64(&data),
        strom_kernels::crc64::crc64_reference(&data)
    );

    let simd_backend = strom_kernels::simd::backend().name();
    println!("== SIMD kernel library ({simd_backend} backend), {CRC_BYTES} B per kernel ==");
    let values: Vec<u64> = data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
        .collect();
    let val_bytes = (values.len() * 8) as u64;
    let pivot = u64::MAX / 2;

    // Bit-identity at every width: ragged lengths cover the empty case,
    // the scalar tail, and the full vector body of each dispatched
    // kernel, on this host's actual backend.
    for &w in &[0usize, 1, 3, 7, 31, 64] {
        let block = &values[..w];
        let mut a = vec![0u64; w];
        let mut b = vec![0u64; w];
        strom_kernels::hash::mix64_batch(block, &mut a);
        strom_kernels::hash::mix64_batch_reference(block, &mut b);
        assert_eq!(a, b, "mix64 diverged at width {w}");
        assert_eq!(
            strom_kernels::filter::predicate_mask(block, Predicate::GreaterThan, pivot),
            strom_kernels::filter::predicate_mask_reference(block, Predicate::GreaterThan, pivot),
            "predicate_mask diverged at width {w}"
        );
        let mut ca = vec![0u64; 256];
        let mut cb = vec![0u64; 256];
        strom_kernels::radix::radix_histogram(block, 8, &mut ca);
        strom_kernels::radix::radix_histogram_reference(block, 8, &mut cb);
        assert_eq!(ca, cb, "radix_histogram diverged at width {w}");
        assert_eq!(
            strom_kernels::topk::gt_mask_le_bytes(&data[..w * 8], pivot),
            strom_kernels::filter::predicate_mask_reference(block, Predicate::GreaterThan, pivot),
            "gt_mask_le_bytes diverged at width {w}"
        );
    }
    for &w in &[0usize, 1, 7, 8, 9, 1023, 1024, 1025, CRC_BYTES] {
        assert_eq!(
            strom_kernels::crc64::crc64_parallel(&data[..w]),
            strom_kernels::crc64::crc64_reference(&data[..w]),
            "crc64_parallel diverged at {w} B"
        );
    }

    let k_crc64 = bench("kernel_crc64_simd", || {
        bb(strom_kernels::crc64::crc64_parallel(&data))
    });
    let mut hout = vec![0u64; values.len()];
    let k_hash = bench("kernel_hash_simd", || {
        strom_kernels::hash::mix64_batch(&values, &mut hout);
        bb(hout[values.len() - 1])
    });
    let k_hash_s = bench("kernel_hash_scalar", || {
        strom_kernels::hash::mix64_batch_reference(&values, &mut hout);
        bb(hout[values.len() - 1])
    });
    let k_hll = bench("kernel_hll_simd", || {
        let mut h = HyperLogLog::standard();
        h.add_u64_batch(&values);
        bb(h.registers()[0])
    });
    let k_hll_s = bench("kernel_hll_scalar", || {
        let mut h = HyperLogLog::standard();
        for &v in &values {
            h.add_u64(v);
        }
        bb(h.registers()[0])
    });
    let mut h_batch = HyperLogLog::standard();
    h_batch.add_u64_batch(&values);
    let mut h_scalar = HyperLogLog::standard();
    for &v in &values {
        h_scalar.add_u64(v);
    }
    assert_eq!(
        h_batch.registers(),
        h_scalar.registers(),
        "HLL batch add diverged from the scalar sketch"
    );
    // Radix streams a larger buffer: the 4-sub-histogram setup is a
    // fixed cost the partitioning of a real shuffle block amortizes.
    let radix_values: Vec<u64> = {
        let mut r = SimRng::seed(0x4a41);
        (0..1 << 18).map(|_| r.next_u64()).collect()
    };
    let radix_bytes = (radix_values.len() * 8) as u64;
    let mut counts = vec![0u64; 256];
    let k_radix = bench("kernel_radix_simd", || {
        counts.fill(0);
        strom_kernels::radix::radix_histogram(&radix_values, 8, &mut counts);
        bb(counts[0])
    });
    let k_radix_s = bench("kernel_radix_scalar", || {
        counts.fill(0);
        strom_kernels::radix::radix_histogram_reference(&radix_values, 8, &mut counts);
        bb(counts[0])
    });
    let k_filter = bench("kernel_filter_simd", || {
        let mut acc = 0u64;
        for block in values.chunks(64) {
            acc ^= strom_kernels::filter::predicate_mask(block, Predicate::GreaterThan, pivot);
        }
        bb(acc)
    });
    let k_filter_s = bench("kernel_filter_scalar", || {
        let mut acc = 0u64;
        for block in values.chunks(64) {
            acc ^= strom_kernels::filter::predicate_mask_reference(
                block,
                Predicate::GreaterThan,
                pivot,
            );
        }
        bb(acc)
    });
    let mut bf = BloomFilter::new(16, 4);
    for &v in values.iter().step_by(3) {
        bf.insert(v);
    }
    for &w in &[0usize, 1, 3, 7, 31, 64] {
        assert_eq!(
            bf.contains_mask(&values[..w]),
            bf.contains_mask_reference(&values[..w]),
            "contains_mask diverged at width {w}"
        );
    }
    let k_bloom = bench("kernel_bloom_simd", || {
        let mut acc = 0u64;
        for block in values.chunks(64) {
            acc ^= bf.contains_mask(block);
        }
        bb(acc)
    });
    let k_bloom_s = bench("kernel_bloom_scalar", || {
        let mut acc = 0u64;
        for block in values.chunks(64) {
            acc ^= bf.contains_mask_reference(block);
        }
        bb(acc)
    });
    const TOPK_K: usize = 64;
    let k_topk = bench("kernel_topk_simd", || {
        let mut k = TopKKernel::new();
        k.ingest(TOPK_K, &data);
        bb(k.seen())
    });
    let k_topk_s = bench("kernel_topk_scalar", || {
        // The tuple-at-a-time baseline consumes the same wire bytes the
        // kernel's ingest does.
        let mut heap: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        for c in data.chunks_exact(8) {
            let v = u64::from_le_bytes(c.try_into().expect("sized"));
            if heap.len() < TOPK_K {
                heap.push(Reverse(v));
            } else if v > heap.peek().expect("full").0 {
                heap.pop();
                heap.push(Reverse(v));
            }
        }
        bb(heap.len())
    });
    let mut tk = TopKKernel::new();
    tk.ingest(TOPK_K, &data);
    assert_eq!(
        tk.top(),
        reference_topk(&values, TOPK_K),
        "vectorized top-k diverged from the sort reference"
    );
    let needle = &data[1000..1008];
    let k_scan = bench("kernel_scan_simd", || {
        bb(strom_kernels::scan::substring_count(&data, needle))
    });
    let k_scan_s = bench("kernel_scan_scalar", || {
        bb(strom_kernels::scan::substring_count_reference(
            &data, needle,
        ))
    });
    let scan_matches = strom_kernels::scan::substring_count(&data, needle);
    assert_eq!(
        scan_matches,
        strom_kernels::scan::substring_count_reference(&data, needle),
        "substring scan diverged from the naive reference"
    );
    assert!(scan_matches >= 1, "the needle was cut from the haystack");

    let kernel_speedups = [
        ("crc64", crc64_ref.ns_per_iter / k_crc64.ns_per_iter),
        ("hash", k_hash_s.ns_per_iter / k_hash.ns_per_iter),
        ("hll", k_hll_s.ns_per_iter / k_hll.ns_per_iter),
        ("radix", k_radix_s.ns_per_iter / k_radix.ns_per_iter),
        ("filter", k_filter_s.ns_per_iter / k_filter.ns_per_iter),
        ("bloom", k_bloom_s.ns_per_iter / k_bloom.ns_per_iter),
        ("topk", k_topk_s.ns_per_iter / k_topk.ns_per_iter),
        ("scan", k_scan_s.ns_per_iter / k_scan.ns_per_iter),
    ];
    // SIMD must never lose to its scalar reference (0.9 absorbs timer
    // noise), and on a multi-lane backend at least one kernel must
    // actually cash the lanes in.
    for (name, s) in &kernel_speedups {
        assert!(
            *s >= 0.9,
            "SIMD {name} slower than its scalar reference: {s:.2}x"
        );
    }
    let kernel_max_speedup = kernel_speedups
        .iter()
        .map(|&(_, s)| s)
        .fold(0.0f64, f64::max);
    if simd_backend != "scalar" {
        assert!(
            kernel_max_speedup >= 2.0,
            "no kernel reached 2x over scalar on the {simd_backend} backend \
             (max {kernel_max_speedup:.2}x)"
        );
    }

    println!("== frame encode/parse, 1440 B payload ==");
    let pkt = sample_packet(1440);
    let mut buf = Vec::new();
    let encode = bench("packet_encode_into", || {
        pkt.encode_into(&mut buf);
        bb(buf.len())
    });
    let frame = Bytes::from(pkt.encode());
    let parse = bench("packet_parse", || bb(Packet::parse(&frame).unwrap()));
    let frame_bytes = frame.len() as u64;

    println!("== trace emission, disabled vs enabled sink ==");
    let sink_off = TraceSink::default();
    let trace_off = bench("trace_emit_disabled", || {
        sink_off.emit(TraceEvent::Retransmit { qpn: 1, packets: 2 });
        bb(&sink_off)
    });
    let sink_on = TraceSink::enabled(1 << 12);
    let trace_on = bench("trace_emit_enabled", || {
        sink_on.emit(TraceEvent::Retransmit { qpn: 1, packets: 2 });
        bb(&sink_on)
    });

    println!("== event engine churn, wheel vs reference heap ==");
    let depths: &[u64] = if quick {
        &[100, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let churn_ops: u64 = if quick { 60_000 } else { 300_000 };
    let mut sim_wheel_eps = Vec::new();
    let mut sim_heap_eps = Vec::new();
    for &depth in depths {
        let mut wl_rng = SimRng::seed(0x51ed ^ depth);
        let prefill: Vec<u64> = (0..depth).map(|_| engine_delta(&mut wl_rng)).collect();
        let churn: Vec<u64> = (0..churn_ops).map(|_| engine_delta(&mut wl_rng)).collect();
        let (w_eps, w_fp) = engine_bench(EventQueue::<EnginePayload>::new, &prefill, &churn);
        let (h_eps, h_fp) =
            engine_bench(ReferenceEventQueue::<EnginePayload>::new, &prefill, &churn);
        assert_eq!(w_fp, h_fp, "engines diverged at depth {depth}");
        println!(
            "{:<40} {:>9.2} M ev/s wheel, {:>9.2} M ev/s heap ({:.2}x)",
            format!("engine_churn_depth_{depth}"),
            w_eps / 1e6,
            h_eps / 1e6,
            w_eps / h_eps,
        );
        sim_wheel_eps.push(w_eps);
        sim_heap_eps.push(h_eps);
    }
    // Headline numbers at depth 1e4 (present in quick and full lists).
    let headline = depths.iter().position(|&d| d == 10_000).unwrap();
    let sim_wheel = sim_wheel_eps[headline];
    let sim_heap = sim_heap_eps[headline];
    let sim_speedup = sim_wheel / sim_heap;

    println!("== end-to-end chaos soak, {soak_seeds} seeds x {soak_ops} ops ==");
    let seeds: Vec<u64> = (0..soak_seeds).collect();
    let t = Instant::now();
    let sequential: Vec<SoakResult> = seeds.iter().map(|&s| soak_one(s, soak_ops, None)).collect();
    let soak_seq_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("{:<40} {soak_seq_ms:>12.1} ms", "soak_sequential");
    let t = Instant::now();
    let parallel = parallel_map(seeds.clone(), strom_sim::default_workers(), |s| {
        soak_one(s, soak_ops, None)
    });
    let soak_par_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("{:<40} {soak_par_ms:>12.1} ms", "soak_parallel");
    assert_eq!(sequential, parallel, "parallel soak must be bit-identical");

    // Telemetry is observation-only: rerunning one seed with a full event
    // trace must reproduce the untraced checksum and histograms exactly.
    let traced = soak_one(seeds[0], soak_ops, Some(1 << 15));
    assert_eq!(traced, sequential[0], "tracing must not perturb the soak");

    let mut write_lat = Histogram::new();
    let mut read_lat = Histogram::new();
    for r in &sequential {
        write_lat.merge(&r.write_lat);
        read_lat.merge(&r.read_lat);
    }
    let q_us = |h: &Histogram, q: f64| h.quantile(q).unwrap_or(0) as f64 / 1e6;
    println!(
        "soak write latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us ({} samples)",
        q_us(&write_lat, 0.50),
        q_us(&write_lat, 0.99),
        q_us(&write_lat, 0.999),
        write_lat.count(),
    );
    println!(
        "soak read latency:  p50 {:.1} us, p99 {:.1} us, p999 {:.1} us ({} samples)",
        q_us(&read_lat, 0.50),
        q_us(&read_lat, 0.99),
        q_us(&read_lat, 0.999),
        read_lat.count(),
    );

    println!(
        "== cluster shuffle scaling (N = 2/4/8, {}% loss) ==",
        LOSS_RATE * 100.0
    );
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let shuffle = parallel_map(NODE_COUNTS.to_vec(), strom_sim::default_workers(), |n| {
        run_shuffle(&shuffle_spec(n, scale, true))
    });
    for (&n, out) in NODE_COUNTS.iter().zip(&shuffle) {
        println!(
            "{:<40} {:>9.3} GB/s aggregate, p99 {:>10.1} us, retx {}",
            format!("shuffle_n{n}"),
            out.aggregate_gbps,
            out.p99_rpc_ps.map(|p| p as f64 / 1e6).unwrap_or(0.0),
            out.retransmissions,
        );
    }
    let sp99 = |i: usize| shuffle[i].p99_rpc_ps.map(|p| p as f64 / 1e6).unwrap_or(0.0);
    let (sg0, sg1, sg2) = (
        shuffle[0].aggregate_gbps,
        shuffle[1].aggregate_gbps,
        shuffle[2].aggregate_gbps,
    );
    let (sp0, sp1, sp2) = (sp99(0), sp99(1), sp99(2));
    let shuffle_drops: u64 = shuffle.iter().map(|o| o.tail_drops).sum();
    let shuffle_retx: u64 = shuffle.iter().map(|o| o.retransmissions).sum();

    println!(
        "== shuffle congestion-control pair (N = 8, shallow fabric, {}% loss) ==",
        LOSS_RATE * 100.0
    );
    let cc_pair = parallel_map(vec![false, true], strom_sim::default_workers(), |cc| {
        run_shuffle(&cc_spec(8, scale, cc))
    });
    let (cc_off, cc_on) = (&cc_pair[0], &cc_pair[1]);
    println!(
        "{:<40} drops {}, retx {}",
        "shuffle_cc_off", cc_off.tail_drops, cc_off.retransmissions
    );
    println!(
        "{:<40} drops {}, retx {}",
        "shuffle_cc_on", cc_on.tail_drops, cc_on.retransmissions
    );
    // The congestion-control acceptance bar: DCQCN must cut both the
    // switch tail drops and the retransmission storm at least 5x.
    assert!(
        cc_off.tail_drops >= 5 * cc_on.tail_drops.max(1),
        "DCQCN tail-drop improvement below 5x: {} vs {}",
        cc_off.tail_drops,
        cc_on.tail_drops
    );
    assert!(
        cc_off.retransmissions >= 5 * cc_on.retransmissions.max(1),
        "DCQCN retransmission improvement below 5x: {} vs {}",
        cc_off.retransmissions,
        cc_on.retransmissions
    );

    println!("== incast N:1 at the tuned operating point (DCQCN, window {INCAST_WINDOW}) ==");
    let incast_runs = parallel_map(INCAST_SENDERS.to_vec(), strom_sim::default_workers(), |n| {
        run_incast(&incast::spec(n, INCAST_WINDOW, scale, true))
    });
    let ps_us = |p: Option<u64>| p.map(|v| v as f64 / 1e6).unwrap_or(0.0);
    for (&n, out) in INCAST_SENDERS.iter().zip(&incast_runs) {
        println!(
            "{:<40} p999 {:>9.1} us, drops {}, marks {}, qp_errors {}",
            format!("incast_n{n}"),
            ps_us(out.p999_ps),
            out.tail_drops,
            out.ecn_marked,
            out.qp_errors,
        );
    }
    let incast_drops: u64 = incast_runs.iter().map(|o| o.tail_drops).sum();
    let incast_marked: u64 = incast_runs.iter().map(|o| o.ecn_marked).sum();
    let incast_cnps: u64 = incast_runs.iter().map(|o| o.cnps).sum();
    let incast_qp_errors: usize = incast_runs.iter().map(|o| o.qp_errors).sum();
    let inc8 = &incast_runs[1];
    // Incast acceptance: the 8:1 fan-in completes with zero terminal QP
    // errors and a p999 bounded below the retransmission timeout.
    assert_eq!(incast_qp_errors, 0, "incast must not error out QPs");
    assert!(
        inc8.p999_ps.unwrap_or(u64::MAX) < 1_000 * strom_sim::time::MICROS,
        "incast N=8 p999 unbounded: {:?} ps",
        inc8.p999_ps
    );
    let fair_on = run_incast(&incast::fairness_spec(4, scale, true));
    let fair_off = run_incast(&incast::fairness_spec(4, scale, false));
    println!(
        "{:<40} Jain {:.4} (DCQCN) vs {:.4} (no CC)",
        "incast_fairness", fair_on.jain, fair_off.jain
    );

    println!("== KV serving tier (open-loop Poisson, 2 servers x 2 clients) ==");
    let kv_chaos_spec = {
        let mut s = kv_serve::spec(KV_TUNED_GAP, scale);
        s.fault = Some(chaos_model(s.seed ^ 0xC405));
        s
    };
    let kv_runs = parallel_map(
        vec![
            kv_serve::spec(KV_TUNED_GAP, scale),
            kv_serve::spec(KV_OVERLOAD_GAP, scale),
            kv_chaos_spec,
        ],
        strom_sim::default_workers(),
        |s| run_kv_serve(&s),
    );
    let (kv_tuned, kv_over, kv_chaos) = (&kv_runs[0], &kv_runs[1], &kv_runs[2]);
    for (name, out) in [
        ("kv_tuned", kv_tuned),
        ("kv_overload", kv_over),
        ("kv_chaos", kv_chaos),
    ] {
        println!(
            "{:<40} offered {:>6} krps, achieved {:>6} krps, p999 {:>9.1} us, retx {}",
            name,
            out.offered_rps / 1000,
            out.achieved_rps / 1000,
            ps_us(out.p999_ps),
            out.retransmissions,
        );
    }
    let kv_violations: u64 = kv_runs.iter().map(kv_serve::audit_violations).sum();
    // The serving-tier acceptance bars: every run's end-to-end audit is
    // clean (payloads verified, PUTs exactly-once, no QP deaths — even
    // under the chaos fault model, which must actually bite), the tuned
    // point's p999 holds an SLO ceiling, and the overload point proves
    // the knee sits above a throughput floor.
    assert_eq!(kv_violations, 0, "KV audit violations: {kv_runs:#?}");
    assert!(
        kv_chaos.retransmissions > 0,
        "KV chaos run saw no retransmissions"
    );
    assert!(
        kv_tuned.p999_ps.unwrap_or(u64::MAX) < 150 * strom_sim::time::MICROS,
        "KV tuned p999 broke the SLO ceiling: {:?} ps",
        kv_tuned.p999_ps
    );
    assert!(
        kv_over.achieved_rps >= 400_000,
        "KV knee throughput floor broken: {} rps",
        kv_over.achieved_rps
    );

    println!("== chained kernel pipelines (on-testbed, simulated time) ==");
    let chain_tuples = kernel_chain::bench_tuples(scale);
    // Each chain runs twice; a same-spec rerun must reproduce the
    // identical ChainRun (fingerprint, elapsed time, retransmissions).
    let chain_runs = parallel_map(vec![0u8, 1, 0, 1], strom_sim::default_workers(), |which| {
        let s = kernel_chain::spec(chain_tuples);
        if which == 0 {
            run_filter_agg_hll(&s)
        } else {
            run_crcverify_shuffle(&s)
        }
    });
    assert_eq!(
        chain_runs[0], chain_runs[2],
        "filter→agg→HLL rerun diverged"
    );
    assert_eq!(
        chain_runs[1], chain_runs[3],
        "CRC-verify→shuffle rerun diverged"
    );
    let (chain_fah, chain_cvs) = (&chain_runs[0], &chain_runs[1]);
    for (name, run) in [
        ("chain_filter_agg_hll", chain_fah),
        ("chain_crcverify_shuffle", chain_cvs),
    ] {
        assert_eq!(run.error_code, None, "{name} surfaced an error sentinel");
        println!(
            "{name:<40} {:>9.3} GiB/s ({} B payload, retx {})",
            run.gib_per_sec, run.payload_bytes, run.retransmissions,
        );
    }

    println!("== conservative-window PDES cluster (N = 8) ==");
    let pdes_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    // A longer (cross-rack scale) cable than the testbed default: the
    // lookahead *is* the window length, so a 1 us cable batches tens of
    // events per window and the barrier cost amortizes — the geometry a
    // parallel run actually targets.
    let pdes_params = PdesClusterParams {
        requests_per_node: if quick { 150 } else { 600 },
        propagation: 1_000 * strom_sim::time::NANOS,
        // Jumbo-leaning payloads: the ICRC + serializer math *is* the
        // measured per-event CPU work, and it must dominate the engine's
        // own bookkeeping for core-scaling to mean anything.
        payload: (1024, 4096),
        ..Default::default()
    };
    let t = Instant::now();
    let pdes_seq = run_pdes_cluster_reference(&pdes_params);
    let pdes_seq_eps = pdes_seq.pdes.events as f64 / t.elapsed().as_secs_f64();
    println!(
        "{:<40} {:>9.2} M ev/s ({} events)",
        "pdes_sequential_reference",
        pdes_seq_eps / 1e6,
        pdes_seq.pdes.events,
    );
    // The windowed engine at 1/2/4/8 workers. Every run — whatever the
    // worker count or the host's core budget — must reproduce the
    // sequential reference bit for bit; that equivalence is asserted
    // unconditionally. Speedup is *recorded* at every width but only
    // *gated* when the host actually has the cores to deliver it.
    let pdes_widths: [usize; 4] = [1, 2, 4, 8];
    let mut pdes_eps = Vec::new();
    for &w in &pdes_widths {
        let t = Instant::now();
        let got = run_pdes_cluster(&pdes_params, w);
        let eps = got.pdes.events as f64 / t.elapsed().as_secs_f64();
        assert_eq!(
            got.digest, pdes_seq.digest,
            "PDES with {w} workers diverged from the sequential reference"
        );
        assert_eq!(got.total, pdes_seq.total, "PDES c{w} counters diverged");
        assert_eq!(got.rtt_sum, pdes_seq.rtt_sum, "PDES c{w} RTTs diverged");
        println!(
            "{:<40} {:>9.2} M ev/s ({:.2}x, {} windows)",
            format!("pdes_windowed_c{w}"),
            eps / 1e6,
            eps / pdes_seq_eps,
            got.pdes.windows,
        );
        pdes_eps.push(eps);
    }
    let pdes_parallel_eps = pdes_eps.iter().copied().fold(0.0f64, f64::max);
    let pdes_speedup = pdes_parallel_eps / pdes_seq_eps;
    println!(
        "pdes: {} cores available, best {:.2} M ev/s ({pdes_speedup:.2}x over sequential)",
        pdes_cores,
        pdes_parallel_eps / 1e6
    );
    // Core-conditional speedup gates (bit-identity was asserted above
    // regardless): a 1-core host can only certify correctness.
    if pdes_cores >= 4 {
        assert!(
            pdes_speedup >= 2.0,
            "PDES speedup below 2x on a {pdes_cores}-core host: {pdes_speedup:.2}x"
        );
    } else if pdes_cores >= 2 {
        assert!(
            pdes_speedup >= 1.0,
            "PDES slower than sequential on a {pdes_cores}-core host: {pdes_speedup:.2}x"
        );
    }

    let icrc_speedup = icrc_ref.ns_per_iter / icrc_s8.ns_per_iter;
    let crc64_speedup = crc64_ref.ns_per_iter / crc64_s8.ns_per_iter;
    let soak_speedup = soak_seq_ms / soak_par_ms;
    println!("icrc speedup: {icrc_speedup:.2}x, crc64 speedup: {crc64_speedup:.2}x, engine speedup: {sim_speedup:.2}x, soak speedup: {soak_speedup:.2}x");
    let spd = |i: usize| kernel_speedups[i].1;
    println!(
        "kernel library ({simd_backend}): crc64 {:.2}x, hash {:.2}x, hll {:.2}x, radix {:.2}x, \
         filter {:.2}x, bloom {:.2}x, topk {:.2}x, scan {:.2}x (max {kernel_max_speedup:.2}x)",
        spd(0),
        spd(1),
        spd(2),
        spd(3),
        spd(4),
        spd(5),
        spd(6),
        spd(7),
    );
    println!(
        "chains ({chain_tuples} tuples): filter→agg→HLL {:.3} GiB/s, CRC-verify→shuffle {:.3} GiB/s",
        chain_fah.gib_per_sec, chain_cvs.gib_per_sec
    );

    let fmt_eps = |v: &[f64]| {
        v.iter()
            .map(|e| format!("{e:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let sim_depths_json = depths
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let sim_wheel_json = fmt_eps(&sim_wheel_eps);
    let sim_heap_json = fmt_eps(&sim_heap_eps);

    let crc = CRC_BYTES as u64;
    let json = format!(
        r#"{{
  "bench": "wire_micro",
  "mode": "{mode}",
  "crc_input_bytes": {crc},
  "icrc_reference_gib_s": {:.4},
  "icrc_slice16_gib_s": {:.4},
  "icrc_speedup": {icrc_speedup:.3},
  "crc64_reference_gib_s": {:.4},
  "crc64_slice16_gib_s": {:.4},
  "crc64_speedup": {crc64_speedup:.3},
  "simd_backend": "{simd_backend}",
  "kernel_crc64_gibps": {k_crc64_g:.4},
  "kernel_crc64_scalar_gibps": {k_crc64_sg:.4},
  "kernel_hash_gibps": {k_hash_g:.4},
  "kernel_hash_scalar_gibps": {k_hash_sg:.4},
  "kernel_hll_gibps": {k_hll_g:.4},
  "kernel_hll_scalar_gibps": {k_hll_sg:.4},
  "kernel_radix_gibps": {k_radix_g:.4},
  "kernel_radix_scalar_gibps": {k_radix_sg:.4},
  "kernel_filter_gibps": {k_filter_g:.4},
  "kernel_filter_scalar_gibps": {k_filter_sg:.4},
  "kernel_bloom_gibps": {k_bloom_g:.4},
  "kernel_bloom_scalar_gibps": {k_bloom_sg:.4},
  "kernel_topk_gibps": {k_topk_g:.4},
  "kernel_topk_scalar_gibps": {k_topk_sg:.4},
  "kernel_scan_gibps": {k_scan_g:.4},
  "kernel_scan_scalar_gibps": {k_scan_sg:.4},
  "kernel_max_speedup": {kernel_max_speedup:.3},
  "chain_tuples": {chain_tuples},
  "chain_filter_agg_hll_gibps": {chain_fah_g:.4},
  "chain_crcverify_shuffle_gibps": {chain_cvs_g:.4},
  "encode_into_gib_s": {:.4},
  "parse_gib_s": {:.4},
  "trace_emit_disabled_ns": {:.2},
  "trace_emit_enabled_ns": {:.2},
  "sim_depths": [{sim_depths_json}],
  "sim_wheel_events_per_sec": [{sim_wheel_json}],
  "sim_heap_events_per_sec": [{sim_heap_json}],
  "sim_events_per_sec_wheel": {sim_wheel:.0},
  "sim_events_per_sec_heap": {sim_heap:.0},
  "sim_engine_speedup": {sim_speedup:.3},
  "pdes_cores_available": {pdes_cores},
  "sim_events_per_sec_sequential": {pdes_seq_eps:.0},
  "sim_events_per_sec_parallel": {pdes_parallel_eps:.0},
  "pdes_speedup_n8_c2": {pdes_c2:.3},
  "pdes_speedup_n8_c4": {pdes_c4:.3},
  "pdes_speedup_n8_c8": {pdes_c8:.3},
  "soak_seeds": {soak_seeds},
  "soak_sequential_ms": {soak_seq_ms:.1},
  "soak_parallel_ms": {soak_par_ms:.1},
  "soak_speedup": {soak_speedup:.3},
  "shuffle_loss_rate": {LOSS_RATE},
  "shuffle_n2_gbps": {sg0:.4},
  "shuffle_n2_p99_us": {sp0:.3},
  "shuffle_n4_gbps": {sg1:.4},
  "shuffle_n4_p99_us": {sp1:.3},
  "shuffle_n8_gbps": {sg2:.4},
  "shuffle_n8_p99_us": {sp2:.3},
  "shuffle_tail_drops": {shuffle_drops},
  "shuffle_retransmissions": {shuffle_retx},
  "shuffle_cc_off_tail_drops": {cc_off_drops},
  "shuffle_cc_off_retransmissions": {cc_off_retx},
  "shuffle_cc_on_tail_drops": {cc_on_drops},
  "shuffle_cc_on_retransmissions": {cc_on_retx},
  "incast_window": {INCAST_WINDOW},
  "incast_n4_p999_us": {inc4_p999:.3},
  "incast_n8_p50_us": {inc8_p50:.3},
  "incast_n8_p99_us": {inc8_p99:.3},
  "incast_n8_p999_us": {inc8_p999:.3},
  "incast_n16_p999_us": {inc16_p999:.3},
  "incast_n8_goodput_gbps": {inc8_goodput:.4},
  "incast_tail_drops": {incast_drops},
  "incast_ecn_marked": {incast_marked},
  "incast_cnps": {incast_cnps},
  "incast_qp_errors": {incast_qp_errors},
  "jain_index": {jain_on:.4},
  "jain_index_no_cc": {jain_off:.4},
  "kv_tuned_gap_ns": {KV_TUNED_GAP},
  "kv_overload_gap_ns": {KV_OVERLOAD_GAP},
  "kv_tuned_offered_krps": {kv_tuned_offered},
  "kv_tuned_achieved_krps": {kv_tuned_achieved},
  "kv_tuned_p50_us": {kv_tuned_p50:.3},
  "kv_tuned_p99_us": {kv_tuned_p99:.3},
  "kv_tuned_p999_us": {kv_tuned_p999:.3},
  "kv_overload_offered_krps": {kv_over_offered},
  "kv_overload_achieved_krps": {kv_over_achieved},
  "kv_overload_p999_us": {kv_over_p999:.3},
  "kv_chaos_p999_us": {kv_chaos_p999:.3},
  "kv_chaos_retransmissions": {kv_chaos_retx},
  "kv_audit_violations": {kv_violations},
  "write_p50_us": {:.3},
  "write_p99_us": {:.3},
  "write_p999_us": {:.3},
  "read_p50_us": {:.3},
  "read_p99_us": {:.3},
  "read_p999_us": {:.3}
}}
"#,
        icrc_ref.gib_per_sec(crc),
        icrc_s8.gib_per_sec(crc),
        crc64_ref.gib_per_sec(crc),
        crc64_s8.gib_per_sec(crc),
        encode.gib_per_sec(frame_bytes),
        parse.gib_per_sec(frame_bytes),
        trace_off.ns_per_iter,
        trace_on.ns_per_iter,
        q_us(&write_lat, 0.50),
        q_us(&write_lat, 0.99),
        q_us(&write_lat, 0.999),
        q_us(&read_lat, 0.50),
        q_us(&read_lat, 0.99),
        q_us(&read_lat, 0.999),
        mode = if quick { "quick" } else { "full" },
        k_crc64_g = k_crc64.gib_per_sec(crc),
        k_crc64_sg = crc64_ref.gib_per_sec(crc),
        k_hash_g = k_hash.gib_per_sec(val_bytes),
        k_hash_sg = k_hash_s.gib_per_sec(val_bytes),
        k_hll_g = k_hll.gib_per_sec(val_bytes),
        k_hll_sg = k_hll_s.gib_per_sec(val_bytes),
        k_radix_g = k_radix.gib_per_sec(radix_bytes),
        k_radix_sg = k_radix_s.gib_per_sec(radix_bytes),
        k_filter_g = k_filter.gib_per_sec(val_bytes),
        k_filter_sg = k_filter_s.gib_per_sec(val_bytes),
        k_bloom_g = k_bloom.gib_per_sec(val_bytes),
        k_bloom_sg = k_bloom_s.gib_per_sec(val_bytes),
        k_topk_g = k_topk.gib_per_sec(val_bytes),
        k_topk_sg = k_topk_s.gib_per_sec(val_bytes),
        k_scan_g = k_scan.gib_per_sec(crc),
        k_scan_sg = k_scan_s.gib_per_sec(crc),
        chain_fah_g = chain_fah.gib_per_sec,
        chain_cvs_g = chain_cvs.gib_per_sec,
        pdes_c2 = pdes_eps[1] / pdes_seq_eps,
        pdes_c4 = pdes_eps[2] / pdes_seq_eps,
        pdes_c8 = pdes_eps[3] / pdes_seq_eps,
        cc_off_drops = cc_off.tail_drops,
        cc_off_retx = cc_off.retransmissions,
        cc_on_drops = cc_on.tail_drops,
        cc_on_retx = cc_on.retransmissions,
        inc4_p999 = ps_us(incast_runs[0].p999_ps),
        inc8_p50 = ps_us(inc8.p50_ps),
        inc8_p99 = ps_us(inc8.p99_ps),
        inc8_p999 = ps_us(inc8.p999_ps),
        inc16_p999 = ps_us(incast_runs[2].p999_ps),
        inc8_goodput = inc8.goodput_gbps,
        jain_on = fair_on.jain,
        jain_off = fair_off.jain,
        kv_tuned_offered = kv_tuned.offered_rps / 1000,
        kv_tuned_achieved = kv_tuned.achieved_rps / 1000,
        kv_tuned_p50 = ps_us(kv_tuned.p50_ps),
        kv_tuned_p99 = ps_us(kv_tuned.p99_ps),
        kv_tuned_p999 = ps_us(kv_tuned.p999_ps),
        kv_over_offered = kv_over.offered_rps / 1000,
        kv_over_achieved = kv_over.achieved_rps / 1000,
        kv_over_p999 = ps_us(kv_over.p999_ps),
        kv_chaos_p999 = ps_us(kv_chaos.p999_ps),
        kv_chaos_retx = kv_chaos.retransmissions,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(path, &json).expect("write BENCH_wire.json");
    println!("wrote {path}");
}
