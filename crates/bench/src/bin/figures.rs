//! Regenerates every table and figure of the StRoM paper's evaluation.
//!
//! ```text
//! figures                      # all experiments, quick scale
//! figures fig7 fig8            # selected experiments
//! figures --full               # the paper's input sizes (slower)
//! figures --list               # list experiment names
//! figures --json out.json ...  # also export machine-readable telemetry
//! ```
//!
//! With `--json`, experiments that drive an instrumented testbed run
//! with tracing enabled and their counters, latency histograms, and
//! trace statistics are collected into one JSON document (schema
//! `strom-figures-telemetry-v1`, one `strom-telemetry-v1` report per
//! experiment); the rest run exactly as without the flag.

use strom_bench::{all_experiments, run_experiment, run_experiment_telemetry, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = Some(path.clone()),
                    None => {
                        eprintln!("--json requires an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for (name, desc) in all_experiments() {
                    println!("{name:8} {desc}");
                }
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; try --list, --full, --quick, --json <path>");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    let registry = all_experiments();
    if names.is_empty() {
        names = registry.iter().map(|(n, _)| n.to_string()).collect();
    }
    for name in &names {
        if !registry.iter().any(|(n, _)| n == name) {
            eprintln!("unknown experiment '{name}'; try --list");
            std::process::exit(2);
        }
    }
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!("# StRoM (EuroSys'20) — regenerated evaluation ({scale_name} scale)\n");
    let mut telemetry: Vec<(String, String)> = Vec::new();
    for name in &names {
        let start = std::time::Instant::now();
        let report = if json_path.is_some() {
            match run_experiment_telemetry(name, scale) {
                Some((rendered, t)) => {
                    telemetry.push((name.clone(), t.to_json()));
                    rendered
                }
                None => run_experiment(name, scale),
            }
        } else {
            run_experiment(name, scale)
        };
        println!("{report}");
        println!(
            "({name} regenerated in {:.1}s)\n",
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"schema\": \"strom-figures-telemetry-v1\",\n");
        out.push_str(&format!(
            "  \"scale\": \"{scale_name}\",\n  \"reports\": {{"
        ));
        for (i, (name, json)) in telemetry.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n\"{name}\": {}", json.trim_end()));
        }
        if !telemetry.is_empty() {
            out.push('\n');
        }
        out.push_str("}\n}\n");
        std::fs::write(&path, out).expect("write telemetry JSON");
        println!(
            "wrote telemetry for {} experiment(s) to {path}",
            telemetry.len()
        );
    }
}
