//! Regenerates every table and figure of the StRoM paper's evaluation.
//!
//! ```text
//! figures                 # all experiments, quick scale
//! figures fig7 fig8       # selected experiments
//! figures --full          # the paper's input sizes (slower)
//! figures --list          # list experiment names
//! ```

use strom_bench::{all_experiments, run_experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--list" => {
                for (name, desc) in all_experiments() {
                    println!("{name:8} {desc}");
                }
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; try --list, --full, --quick");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    let registry = all_experiments();
    if names.is_empty() {
        names = registry.iter().map(|(n, _)| n.to_string()).collect();
    }
    for name in &names {
        if !registry.iter().any(|(n, _)| n == name) {
            eprintln!("unknown experiment '{name}'; try --list");
            std::process::exit(2);
        }
    }
    println!(
        "# StRoM (EuroSys'20) — regenerated evaluation ({} scale)\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    for name in names {
        let start = std::time::Instant::now();
        let report = run_experiment(&name, scale);
        println!("{report}");
        println!(
            "({name} regenerated in {:.1}s)\n",
            start.elapsed().as_secs_f64()
        );
    }
}
