//! Criterion benchmarks of the simulator itself: wall-clock cost of
//! simulating end-to-end operations. Useful for sizing the `--full`
//! experiment runs and catching event-loop regressions (e.g. the
//! retransmission-check dedup).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use strom_nic::{NicConfig, Testbed, WorkRequest};

fn bench_write_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_write");
    for &size in &[64u32, 4096, 65536] {
        g.throughput(Throughput::Bytes(u64::from(size)));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut tb = Testbed::new(NicConfig::ten_gig());
            tb.connect_qp(1);
            let src = tb.pin(0, 1 << 21);
            let dst = tb.pin(1, 1 << 21);
            tb.mem(0).write(src, &vec![7u8; size as usize]);
            b.iter(|| {
                let h = tb.post(
                    0,
                    1,
                    WorkRequest::Write {
                        remote_vaddr: dst,
                        local_vaddr: src,
                        len: size,
                    },
                );
                let t = tb.run_until_complete(0, h);
                tb.run_until_idle();
                black_box(t)
            })
        });
    }
    g.finish();
}

fn bench_testbed_setup(c: &mut Criterion) {
    c.bench_function("testbed_new_and_pin", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(NicConfig::ten_gig());
            tb.connect_qp(1);
            black_box(tb.pin(0, 1 << 21))
        })
    });
}

criterion_group!(benches, bench_write_op, bench_testbed_setup);
criterion_main!(benches);
