//! Micro-benchmarks of the simulator itself: wall-clock cost of
//! simulating end-to-end operations. Useful for sizing the `--full`
//! experiment runs and catching event-loop regressions (e.g. the
//! retransmission-check dedup).

use strom_bench::micro::{bb, bench, bench_throughput};

use strom_nic::{NicConfig, Testbed, WorkRequest};

fn main() {
    println!("== simulate_write ==");
    for &size in &[64u32, 4096, 65536] {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(1);
        let src = tb.pin(0, 1 << 21);
        let dst = tb.pin(1, 1 << 21);
        tb.mem(0).write(src, &vec![7u8; size as usize]);
        bench_throughput(&format!("simulate_write/{size}"), u64::from(size), || {
            let h = tb.post(
                0,
                1,
                WorkRequest::Write {
                    remote_vaddr: dst,
                    local_vaddr: src,
                    len: size,
                },
            );
            let t = tb.run_until_complete(0, h);
            tb.run_until_idle();
            bb(t)
        });
    }

    bench("testbed_new_and_pin", || {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(1);
        bb(tb.pin(0, 1 << 21))
    });
}
