//! Criterion benchmarks of the protocol state machines: the software
//! analogue of the §4.1 claim that PSN checking takes ~5 cycles/packet
//! and must sustain line rate for minimum-size frames.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use strom_proto::{MultiQueue, Requester, Responder, StateTable, WorkRequest};
use strom_wire::bth::Reth;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;

fn bench_psn_classify(c: &mut Criterion) {
    let mut st = StateTable::new(512);
    st.init_qp(7, 0, 0);
    c.bench_function("state_table_classify", |b| {
        b.iter(|| black_box(st.classify_request(7, black_box(0))))
    });
}

fn bench_responder_write_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("responder");
    g.throughput(Throughput::Elements(1));
    g.bench_function("write_only_packet", |b| {
        let mut st = StateTable::new(8);
        st.init_qp(1, 0, 0);
        let mut r = Responder::new(8, 1440);
        let mut psn = 0u32;
        b.iter(|| {
            let pkt = Packet::new(
                0,
                1,
                Opcode::WriteOnly,
                1,
                psn,
                Some(Reth {
                    vaddr: 0x1000,
                    rkey: 0,
                    dma_len: 64,
                }),
                None,
                Bytes::from_static(&[0u8; 64]),
            );
            psn = (psn + 1) & 0xff_ffff;
            black_box(r.on_packet(&mut st, &pkt))
        })
    });
    g.finish();
}

fn bench_requester_post(c: &mut Criterion) {
    c.bench_function("requester_post_write", |b| {
        let mut st = StateTable::new(8);
        st.init_qp(1, 0, 0);
        let mut r = Requester::new(8, 64, 1440);
        b.iter(|| {
            let (_, pkts) = r
                .post(
                    &mut st,
                    1,
                    WorkRequest::Write {
                        remote_vaddr: 0,
                        local_vaddr: 0,
                        len: 64,
                    },
                )
                .unwrap();
            // Ack immediately so the outstanding list stays bounded.
            let psn = pkts[0].psn;
            let _ = r.on_ack(
                &mut st,
                1,
                psn,
                strom_wire::bth::Aeth {
                    syndrome: strom_wire::bth::AethSyndrome::Ack,
                    msn: 0,
                },
            );
            black_box(psn)
        })
    });
}

fn bench_multi_queue(c: &mut Criterion) {
    c.bench_function("multi_queue_push_consume", |b| {
        let mut mq = MultiQueue::new(16, 256);
        b.iter(|| {
            mq.push(3, 0x1000, 64);
            black_box(mq.consume(3, 64))
        })
    });
}

criterion_group!(
    benches,
    bench_psn_classify,
    bench_responder_write_only,
    bench_requester_post,
    bench_multi_queue
);
criterion_main!(benches);
