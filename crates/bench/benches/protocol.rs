//! Micro-benchmarks of the protocol state machines: the software
//! analogue of the §4.1 claim that PSN checking takes ~5 cycles/packet
//! and must sustain line rate for minimum-size frames.

use bytes::Bytes;
use strom_bench::micro::{bb, bench};

use strom_proto::{MultiQueue, Requester, Responder, StateTable, WorkRequest};
use strom_wire::bth::Reth;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;

fn main() {
    let mut st = StateTable::new(512);
    st.init_qp(7, 0, 0);
    bench("state_table_classify", || bb(st.classify_request(7, bb(0))));

    {
        let mut st = StateTable::new(8);
        st.init_qp(1, 0, 0);
        let mut r = Responder::new(8, 1440);
        let mut psn = 0u32;
        bench("responder/write_only_packet", || {
            let pkt = Packet::new(
                0,
                1,
                Opcode::WriteOnly,
                1,
                psn,
                Some(Reth {
                    vaddr: 0x1000,
                    rkey: 0,
                    dma_len: 64,
                }),
                None,
                Bytes::from_static(&[0u8; 64]),
            );
            psn = (psn + 1) & 0xff_ffff;
            bb(r.on_packet(&mut st, &pkt))
        });
    }

    {
        let mut st = StateTable::new(8);
        st.init_qp(1, 0, 0);
        let mut r = Requester::new(8, 64, 1440);
        bench("requester_post_write", || {
            let (_, pkts) = r
                .post(
                    &mut st,
                    1,
                    WorkRequest::Write {
                        remote_vaddr: 0,
                        local_vaddr: 0,
                        len: 64,
                    },
                )
                .unwrap();
            // Ack immediately so the outstanding list stays bounded.
            let psn = pkts[0].psn;
            let _ = r.on_ack(
                &mut st,
                1,
                psn,
                strom_wire::bth::Aeth {
                    syndrome: strom_wire::bth::AethSyndrome::Ack,
                    msn: 0,
                },
            );
            bb(psn)
        });
    }

    let mut mq = MultiQueue::new(16, 256);
    bench("multi_queue_push_consume", || {
        mq.push(3, 0x1000, 64);
        bb(mq.consume(3, 64))
    });
}
