//! Criterion benchmarks of the algorithm substrates the kernels run.
//!
//! These measure the *real* Rust implementations (not the simulation):
//! CRC64 (the consistency kernel and its software baseline), HyperLogLog
//! updates, and radix partitioning. Throughputs here substantiate the
//! calibration constants in `strom-baselines` (e.g. table-driven CRC64 at
//! ~1 GB/s ⇒ the paper's ≤40 % software overhead at 4 KB).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use strom_baselines::cpu_partition::software_partition;
use strom_baselines::parallel_hll;
use strom_kernels::crc64::crc64;
use strom_kernels::hash::mix64;
use strom_kernels::hll::HyperLogLog;

fn bench_crc64(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc64");
    for size in [64usize, 512, 4096, 65536] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| crc64(black_box(d)))
        });
    }
    g.finish();
}

fn bench_hll(c: &mut Criterion) {
    let mut g = c.benchmark_group("hll");
    let items: Vec<u8> = (0..100_000u64).flat_map(|i| i.to_le_bytes()).collect();
    g.throughput(Throughput::Bytes(items.len() as u64));
    g.bench_function("add_100k_items", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::standard();
            for chunk in items.chunks_exact(8) {
                h.add_item(chunk.try_into().unwrap());
            }
            black_box(h.estimate())
        })
    });
    g.bench_function("parallel_4t_100k_items", |b| {
        b.iter(|| black_box(parallel_hll(&items, 4, 14).estimate()))
    });
    g.finish();
}

fn bench_mix64(c: &mut Criterion) {
    c.bench_function("mix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = mix64(black_box(x));
            x
        })
    });
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix_partition");
    let values: Vec<u64> = (0..131_072u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    g.throughput(Throughput::Bytes(values.len() as u64 * 8));
    for parts in [16usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &p| {
            b.iter(|| black_box(software_partition(&values, p).flushes))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_crc64,
    bench_hll,
    bench_mix64,
    bench_partition
);
criterion_main!(benches);
