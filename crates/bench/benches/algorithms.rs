//! Micro-benchmarks of the algorithm substrates the kernels run.
//!
//! These measure the *real* Rust implementations (not the simulation):
//! CRC64 (the consistency kernel and its software baseline), HyperLogLog
//! updates, and radix partitioning. Throughputs here substantiate the
//! calibration constants in `strom-baselines` (e.g. table-driven CRC64 at
//! ~1 GB/s ⇒ the paper's ≤40 % software overhead at 4 KB).

use strom_bench::micro::{bb, bench, bench_throughput};

use strom_baselines::cpu_partition::software_partition;
use strom_baselines::parallel_hll;
use strom_kernels::crc64::crc64;
use strom_kernels::hash::mix64;
use strom_kernels::hll::HyperLogLog;

fn main() {
    println!("== crc64 ==");
    for size in [64usize, 512, 4096, 65536] {
        let data = vec![0xa5u8; size];
        bench_throughput(&format!("crc64/{size}"), size as u64, || crc64(bb(&data)));
    }

    println!("== hll ==");
    let items: Vec<u8> = (0..100_000u64).flat_map(|i| i.to_le_bytes()).collect();
    bench_throughput("hll/add_100k_items", items.len() as u64, || {
        let mut h = HyperLogLog::standard();
        for chunk in items.chunks_exact(8) {
            h.add_item(chunk.try_into().unwrap());
        }
        bb(h.estimate())
    });
    bench_throughput("hll/parallel_4t_100k_items", items.len() as u64, || {
        bb(parallel_hll(&items, 4, 14).estimate())
    });

    bench("mix64", || {
        let mut x = 0u64;
        for _ in 0..64 {
            x = mix64(bb(x));
        }
        x
    });

    println!("== radix_partition ==");
    let values: Vec<u64> = (0..131_072u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    for parts in [16usize, 256, 1024] {
        bench_throughput(
            &format!("radix_partition/{parts}"),
            values.len() as u64 * 8,
            || bb(software_partition(&values, parts).flushes),
        );
    }
}
