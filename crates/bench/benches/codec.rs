//! Criterion benchmarks of the wire codecs: encode/parse rates of full
//! RoCE v2 frames — the software analogue of the line-rate pipeline
//! requirement (§4.1: line-rate processing even for small packets).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use strom_wire::bth::Reth;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;
use strom_wire::segment::segment_message;

fn sample_packet(payload: usize) -> Packet {
    Packet::new(
        1,
        2,
        Opcode::WriteOnly,
        5,
        100,
        Some(Reth {
            vaddr: 0x1000,
            rkey: 1,
            dma_len: payload as u32,
        }),
        None,
        Bytes::from(vec![0xabu8; payload]),
    )
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_encode");
    for payload in [64usize, 1440] {
        let pkt = sample_packet(payload);
        g.throughput(Throughput::Bytes(pkt.wire_bytes() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &pkt, |b, p| {
            b.iter(|| black_box(p.encode()))
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_parse");
    for payload in [64usize, 1440] {
        let frame = sample_packet(payload).encode();
        g.throughput(Throughput::Bytes(frame.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &frame, |b, f| {
            b.iter(|| black_box(Packet::parse(f).unwrap()))
        });
    }
    g.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    c.bench_function("segment_1MB_message", |b| {
        b.iter(|| black_box(segment_message(1 << 20, 1440).len()))
    });
}

criterion_group!(benches, bench_encode, bench_parse, bench_segmentation);
criterion_main!(benches);
