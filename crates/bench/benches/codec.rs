//! Micro-benchmarks of the wire codecs: encode/parse rates of full
//! RoCE v2 frames — the software analogue of the line-rate pipeline
//! requirement (§4.1: line-rate processing even for small packets).

use bytes::Bytes;
use strom_bench::micro::{bb, bench, bench_throughput};

use strom_wire::bth::Reth;
use strom_wire::opcode::Opcode;
use strom_wire::packet::Packet;
use strom_wire::segment::segment_message;

fn sample_packet(payload: usize) -> Packet {
    Packet::new(
        1,
        2,
        Opcode::WriteOnly,
        5,
        100,
        Some(Reth {
            vaddr: 0x1000,
            rkey: 1,
            dma_len: payload as u32,
        }),
        None,
        Bytes::from(vec![0xabu8; payload]),
    )
}

fn main() {
    println!("== packet_encode ==");
    for payload in [64usize, 1440] {
        let pkt = sample_packet(payload);
        bench_throughput(
            &format!("packet_encode/{payload}"),
            pkt.wire_bytes() as u64,
            || bb(pkt.encode()),
        );
    }

    println!("== packet_encode_into (pooled buffer) ==");
    for payload in [64usize, 1440] {
        let pkt = sample_packet(payload);
        let mut buf = Vec::new();
        bench_throughput(
            &format!("packet_encode_into/{payload}"),
            pkt.wire_bytes() as u64,
            || {
                pkt.encode_into(&mut buf);
                bb(buf.len())
            },
        );
    }

    println!("== packet_parse ==");
    for payload in [64usize, 1440] {
        let frame = Bytes::from(sample_packet(payload).encode());
        bench_throughput(
            &format!("packet_parse/{payload}"),
            frame.len() as u64,
            || bb(Packet::parse(&frame).unwrap()),
        );
    }

    bench("segment_1MB_message", || {
        bb(segment_message(1 << 20, 1440).len())
    });
}
