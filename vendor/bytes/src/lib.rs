//! A minimal, API-compatible stand-in for the parts of the `bytes` crate
//! this workspace uses, so the build has no network dependency.
//!
//! [`Bytes`] is a cheaply cloneable, immutable, sliceable byte container:
//! either a view into a `&'static [u8]` or a reference-counted heap
//! buffer. `clone` and `slice` are O(1) and never copy the underlying
//! storage, matching the real crate's behaviour (which the simulator
//! relies on when fanning one payload out to DMA, kernels, and
//! retransmission records).

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared immutable storage behind a [`Bytes`] handle.
///
/// Heap storage is `Arc<Vec<u8>>` rather than `Arc<[u8]>`: `Vec<u8> →
/// Bytes` is then a pure move (no `into_boxed_slice` reallocation when
/// capacity exceeds length), and a sole owner can reclaim the `Vec` for
/// reuse via [`Bytes::try_reclaim`] — the mechanism behind the testbed's
/// frame-buffer pool.
#[derive(Debug, Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Debug, Clone)]
pub struct Bytes {
    storage: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[inline]
    pub const fn new() -> Self {
        Bytes {
            storage: Storage::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Creates a `Bytes` viewing a static slice without copying.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            storage: Storage::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copies `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the container is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a slice of self for the provided range — O(1), sharing the
    /// underlying storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            storage: self.storage.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The bytes as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Static(s) => &s[self.offset..self.offset + self.len],
            Storage::Shared(s) => &s[self.offset..self.offset + self.len],
        }
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Attempts to take back the underlying heap buffer without copying.
    ///
    /// Succeeds only when this handle is the *sole* owner of heap storage
    /// (no other `Bytes` clones or slices alive); the returned `Vec` is
    /// the whole backing buffer, regardless of how this handle was
    /// sliced. On failure the handle is returned unchanged. Static-backed
    /// `Bytes` never reclaim.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes {
            storage,
            offset,
            len,
        } = self;
        match storage {
            Storage::Shared(arc) => Arc::try_unwrap(arc).map_err(|arc| Bytes {
                storage: Storage::Shared(arc),
                offset,
                len,
            }),
            s @ Storage::Static(_) => Err(Bytes {
                storage: s,
                offset,
                len,
            }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            storage: Storage::Shared(Arc::new(v)),
            offset: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s, [2u8, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2, [3u8, 4]);
        assert_eq!(b.len(), 6, "parent unchanged");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn static_and_shared_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, *b"abc");
        assert_eq!(a, b"abc");
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn from_vec_does_not_copy() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"payload");
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "move, not reallocation");
    }

    #[test]
    fn sole_owner_reclaims_the_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let v = b.try_reclaim().expect("sole owner");
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reclaim_fails_while_a_slice_is_alive() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let s = b.slice(1..3);
        let b = b.try_reclaim().expect_err("slice keeps storage alive");
        assert_eq!(b, [1u8, 2, 3, 4]);
        drop(s);
        assert!(b.try_reclaim().is_ok(), "reclaims once the slice drops");
    }

    #[test]
    fn sliced_sole_owner_reclaims_the_whole_buffer() {
        let b = Bytes::from(vec![5u8, 6, 7, 8]).slice(1..3);
        assert_eq!(b.try_reclaim().expect("sole owner"), vec![5, 6, 7, 8]);
    }

    #[test]
    fn static_bytes_never_reclaim() {
        assert!(Bytes::from_static(b"abc").try_reclaim().is_err());
    }
}
