//! StRoM: smart remote memory — a faithful, simulation-based reproduction of
//! the EuroSys 2020 paper by Sidler, Wang, Chiosa, Kulkarni and Alonso.
//!
//! This facade crate re-exports the public API of every subsystem crate so a
//! downstream user can depend on `strom` alone. See the individual crates for
//! the detailed documentation:
//!
//! - [`sim`] — deterministic discrete-event simulation engine.
//! - [`wire`] — RoCE v2 packet formats (Ethernet/IPv4/UDP/BTH/RETH/AETH).
//! - [`proto`] — RoCE protocol state machines (PSN windows, retransmission).
//! - [`mem`] — host memory, TLB, and PCIe/DMA models.
//! - [`kernels`] — the StRoM kernel framework and the four paper kernels.
//! - [`nic`] — the full two-node NIC testbed and host API.
//! - [`baselines`] — CPU/TCP baselines the paper compares against.
//! - [`resources`] — FPGA resource-usage model (Table 3, §6.1).
//! - [`telemetry`] — tracing, metrics registry, and JSON report export.
pub use strom_baselines as baselines;
pub use strom_kernels as kernels;
pub use strom_mem as mem;
pub use strom_nic as nic;
pub use strom_proto as proto;
pub use strom_resources as resources;
pub use strom_sim as sim;
pub use strom_telemetry as telemetry;
pub use strom_wire as wire;
