//! End-to-end tests of the filtering and aggregation stream kernels —
//! the §1 data-reduction operations whose response size is unknown in
//! advance (the reason the StRoM verbs use write semantics, §5.1).

use strom::kernels::aggregate::{Aggregate, AggregateKernel, AggregateParams};
use strom::kernels::filter::{FilterKernel, FilterParams};
use strom::kernels::traversal::Predicate;
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::SimRng;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

fn random_tuples(n: u64, seed: u64) -> (Vec<u64>, Vec<u8>) {
    let mut rng = SimRng::seed(seed);
    let values: Vec<u64> = (0..n).map(|_| rng.below(1 << 32)).collect();
    let bytes = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    (values, bytes)
}

#[test]
fn filter_kernel_pushes_selection_to_the_server_nic() {
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let summary_buf = tb.pin(CLIENT, 1 << 20);
    let result_region = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(SERVER, Box::new(FilterKernel::new()));

    let (values, bytes) = random_tuples(20_000, 11);
    tb.mem(CLIENT).write(src, &bytes);
    let threshold = 1u64 << 31;

    // Configure via RPC, then stream via RPC WRITE.
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::FILTER,
            params: FilterParams {
                dest_addr: result_region,
                dest_capacity: 4 << 20,
                predicate: Predicate::GreaterThan,
                operand: threshold,
                target_address: summary_buf,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let watch = tb.add_watch(CLIENT, summary_buf, 16);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::FILTER,
            local_vaddr: src,
            len: bytes.len() as u32,
        },
    );
    tb.run_until_watch(watch);
    tb.run_until_idle();

    // Summary arrived at the client.
    let summary = tb.mem(CLIENT).read(summary_buf, 16);
    let (seen, kept) = FilterKernel::decode_summary(&summary).unwrap();
    let want: Vec<u64> = values.iter().copied().filter(|&v| v > threshold).collect();
    assert_eq!(seen, values.len() as u64);
    assert_eq!(kept, want.len() as u64);

    // The qualifying tuples landed contiguously in the server region.
    let got_bytes = tb.mem(SERVER).read(result_region, want.len() * 8);
    let got: Vec<u64> = got_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn aggregate_kernel_reduces_the_stream_to_32_bytes() {
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let result_buf = tb.pin(CLIENT, 1 << 20);
    tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(AggregateKernel::new()));

    let (values, bytes) = random_tuples(50_000, 12);
    tb.mem(CLIENT).write(src, &bytes);

    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::AGGREGATE,
            params: AggregateParams {
                target_address: result_buf,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let watch = tb.add_watch(CLIENT, result_buf, 32);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::AGGREGATE,
            local_vaddr: src,
            len: bytes.len() as u32,
        },
    );
    tb.run_until_watch(watch);
    tb.run_until_idle();

    let record = tb.mem(CLIENT).read(result_buf, 32);
    let agg = Aggregate::decode(&record).unwrap();
    assert_eq!(agg, Aggregate::of(&values));
    // 400 KB in, 32 B out: the data reduction the paper motivates.
    assert_eq!(record.len(), 32);
}

#[test]
fn reduction_kernels_survive_loss() {
    let mut tb = testbed();
    tb.set_loss_rate(0.04);
    let src = tb.pin(CLIENT, 2 << 20);
    let result_buf = tb.pin(CLIENT, 1 << 20);
    tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(AggregateKernel::new()));

    let (values, bytes) = random_tuples(10_000, 13);
    tb.mem(CLIENT).write(src, &bytes);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::AGGREGATE,
            params: AggregateParams {
                target_address: result_buf,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    let watch = tb.add_watch(CLIENT, result_buf, 32);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::AGGREGATE,
            local_vaddr: src,
            len: bytes.len() as u32,
        },
    );
    tb.run_until_watch(watch);
    tb.run_until_idle();
    let agg = Aggregate::decode(&tb.mem(CLIENT).read(result_buf, 32)).unwrap();
    assert_eq!(
        agg,
        Aggregate::of(&values),
        "retransmission must not double-count tuples"
    );
    assert!(tb.retransmissions(CLIENT) > 0);
}
