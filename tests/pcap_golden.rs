//! Golden-file tests for the pcap exporter: a short, fully
//! deterministic READ/WRITE exchange must capture byte-identically to
//! the checked-in fixture — at both hardware platforms, since the 100 G
//! datapath changes frame *timestamps* (and must change nothing else) —
//! and every captured frame must round-trip through [`Packet::parse`].
//!
//! Regenerate the fixtures after an intentional wire-format or timing
//! change with:
//!
//! ```text
//! STROM_BLESS=1 cargo test --test pcap_golden
//! ```

use strom::nic::{NicConfig, Testbed};
use strom::proto::WorkRequest;
use strom::wire::packet::Packet;
use strom::wire::pcap;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/short_exchange.pcap"
);

const FIXTURE_100G: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/short_exchange_100g.pcap"
);

/// Runs the canonical short exchange — one 256 B WRITE then one 512 B
/// READ — on `cfg` and returns the captured pcap bytes.
fn capture_short_exchange_on(cfg: NicConfig) -> Vec<u8> {
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(1);
    tb.enable_capture();
    let local = tb.pin(0, 1 << 21);
    let remote = tb.pin(1, 1 << 21);
    let data: Vec<u8> = (0..512u32).map(|i| (i % 253) as u8).collect();
    tb.mem(0).write(local, &data[..256]);
    tb.mem(1).write(remote + 1024, &data);
    let w = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: remote,
            local_vaddr: local,
            len: 256,
        },
    );
    tb.run_until_complete(0, w);
    let r = tb.post(
        0,
        1,
        WorkRequest::Read {
            remote_vaddr: remote + 1024,
            local_vaddr: local + 1024,
            len: 512,
        },
    );
    tb.run_until_complete(0, r);
    tb.run_until_idle();
    tb.pcap_bytes().expect("capture enabled").to_vec()
}

/// The canonical 10 G capture.
fn capture_short_exchange() -> Vec<u8> {
    capture_short_exchange_on(NicConfig::ten_gig())
}

/// Checks (or, under `STROM_BLESS`, rewrites) one golden fixture.
fn check_fixture(path: &str, got: &[u8]) {
    if std::env::var_os("STROM_BLESS").is_some() {
        std::fs::write(path, got).expect("write fixture");
        return;
    }
    let want = std::fs::read(path)
        .expect("fixture missing — regenerate with STROM_BLESS=1 cargo test --test pcap_golden");
    assert_eq!(
        got,
        &want[..],
        "pcap capture diverged from the golden fixture; if the wire \
         format or timing model changed intentionally, re-bless with \
         STROM_BLESS=1"
    );
}

#[test]
fn short_exchange_matches_golden_fixture() {
    check_fixture(FIXTURE, &capture_short_exchange());
}

/// The same exchange on the 100 G platform, pinned to its own fixture:
/// the frame *bytes* must match the 10 G capture exactly (the platform
/// must never leak into the wire format), only the capture timestamps
/// may differ — and each must be strictly earlier than its 10 G
/// counterpart.
#[test]
fn short_exchange_100g_matches_golden_fixture() {
    let got = capture_short_exchange_on(NicConfig::hundred_gig());
    check_fixture(FIXTURE_100G, &got);

    let ten = pcap::read_frames(&capture_short_exchange()).expect("valid pcap");
    let hundred = pcap::read_frames(&got).expect("valid pcap");
    assert_eq!(ten.len(), hundred.len(), "frame count must match 10 G");
    for (i, ((ts10, f10), (ts100, f100))) in ten.iter().zip(&hundred).enumerate() {
        assert_eq!(
            f10, f100,
            "frame {i}: wire bytes must be platform-independent"
        );
        assert!(
            ts100 < ts10,
            "frame {i}: 100 G timestamp {ts100} !< 10 G timestamp {ts10}"
        );
    }
}

#[test]
fn captured_frames_parse_and_round_trip() {
    let bytes = capture_short_exchange();
    let frames = pcap::read_frames(&bytes).expect("valid pcap");
    // WRITE (1 pkt + ACK) and READ (request + response) both directions:
    // at least four frames cross the wire.
    assert!(frames.len() >= 4, "only {} frames captured", frames.len());
    let mut last_ts = 0u64;
    for (ts, frame) in &frames {
        assert!(*ts >= last_ts, "capture timestamps must be monotonic");
        last_ts = *ts;
        let frame_bytes = bytes::Bytes::from(frame.clone());
        let pkt = Packet::parse(&frame_bytes).expect("captured frame parses");
        assert_eq!(
            &pkt.encode(),
            frame,
            "re-encoding the parsed packet must reproduce the frame"
        );
    }
}
