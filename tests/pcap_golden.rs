//! Golden-file test for the pcap exporter: a short, fully deterministic
//! READ/WRITE exchange must capture byte-identically to the checked-in
//! fixture, and every captured frame must round-trip through
//! [`Packet::parse`].
//!
//! Regenerate the fixture after an intentional wire-format or timing
//! change with:
//!
//! ```text
//! STROM_BLESS=1 cargo test --test pcap_golden
//! ```

use strom::nic::{NicConfig, Testbed};
use strom::proto::WorkRequest;
use strom::wire::packet::Packet;
use strom::wire::pcap;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/short_exchange.pcap"
);

/// Runs the canonical short exchange — one 256 B WRITE then one 512 B
/// READ on a 10G testbed — and returns the captured pcap bytes.
fn capture_short_exchange() -> Vec<u8> {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(1);
    tb.enable_capture();
    let local = tb.pin(0, 1 << 21);
    let remote = tb.pin(1, 1 << 21);
    let data: Vec<u8> = (0..512u32).map(|i| (i % 253) as u8).collect();
    tb.mem(0).write(local, &data[..256]);
    tb.mem(1).write(remote + 1024, &data);
    let w = tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: remote,
            local_vaddr: local,
            len: 256,
        },
    );
    tb.run_until_complete(0, w);
    let r = tb.post(
        0,
        1,
        WorkRequest::Read {
            remote_vaddr: remote + 1024,
            local_vaddr: local + 1024,
            len: 512,
        },
    );
    tb.run_until_complete(0, r);
    tb.run_until_idle();
    tb.pcap_bytes().expect("capture enabled").to_vec()
}

#[test]
fn short_exchange_matches_golden_fixture() {
    let got = capture_short_exchange();
    if std::env::var_os("STROM_BLESS").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read(FIXTURE)
        .expect("fixture missing — regenerate with STROM_BLESS=1 cargo test --test pcap_golden");
    assert_eq!(
        got, want,
        "pcap capture diverged from the golden fixture; if the wire \
         format or timing model changed intentionally, re-bless with \
         STROM_BLESS=1"
    );
}

#[test]
fn captured_frames_parse_and_round_trip() {
    let bytes = capture_short_exchange();
    let frames = pcap::read_frames(&bytes).expect("valid pcap");
    // WRITE (1 pkt + ACK) and READ (request + response) both directions:
    // at least four frames cross the wire.
    assert!(frames.len() >= 4, "only {} frames captured", frames.len());
    let mut last_ts = 0u64;
    for (ts, frame) in &frames {
        assert!(*ts >= last_ts, "capture timestamps must be monotonic");
        last_ts = *ts;
        let frame_bytes = bytes::Bytes::from(frame.clone());
        let pkt = Packet::parse(&frame_bytes).expect("captured frame parses");
        assert_eq!(
            &pkt.encode(),
            frame,
            "re-encoding the parsed packet must reproduce the frame"
        );
    }
}
