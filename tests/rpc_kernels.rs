//! End-to-end integration tests of the StRoM RPC mechanism: a client node
//! invokes kernels on the server NIC with a single network round trip and
//! the response lands in client memory via an RDMA WRITE (§5).

use strom::kernels::consistency::{ConsistencyKernel, ConsistencyParams};
use strom::kernels::framework::decode_error;
use strom::kernels::get::{GetKernel, GetParams};
use strom::kernels::layouts::{
    build_hash_table, build_linked_list, build_object_store, value_pattern,
};
use strom::kernels::traversal::{TraversalKernel, TraversalParams};
use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::time::MICROS;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

#[test]
fn traversal_kernel_linked_list_get_in_one_round_trip() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));

    let keys = [100u64, 200, 300, 400, 500, 600, 700, 800];
    let list = build_linked_list(tb.mem(SERVER), server_buf, &keys, 64);

    for (i, &key) in keys.iter().enumerate() {
        let target = client_buf + (i as u64) * 64;
        let watch = tb.add_watch(CLIENT, target, 64);
        let t0 = tb.now();
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
                params: TraversalParams::for_linked_list(list.head, key, 64, target).encode(),
            },
        );
        let t1 = tb.run_until_watch(watch);
        assert_eq!(
            tb.mem(CLIENT).read(target, 64),
            value_pattern(key, 64),
            "value for key {key}"
        );
        let us = (t1 - t0) as f64 / MICROS as f64;
        // One network round trip plus (i + 2) PCIe reads: even the deepest
        // lookup stays far below the RDMA-READ equivalent.
        assert!(us < 40.0, "lookup {i} took {us} us");
    }
    tb.run_until_idle();
    assert_eq!(tb.fabric(SERVER).completed(), keys.len() as u64);
}

#[test]
fn traversal_latency_grows_sublinearly_with_list_length() {
    // The Fig 7 shape: each extra element costs one PCIe read (~1.5 µs),
    // not a network round trip (~5 µs).
    let mut lat = Vec::new();
    for len in [4usize, 32] {
        let mut tb = testbed();
        let client_buf = tb.pin(CLIENT, 1 << 20);
        let server_buf = tb.pin(SERVER, 1 << 20);
        tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
        let keys: Vec<u64> = (1..=len as u64).map(|i| i * 10).collect();
        let list = build_linked_list(tb.mem(SERVER), server_buf, &keys, 64);
        // Look up the tail key: the worst case.
        let watch = tb.add_watch(CLIENT, client_buf, 64);
        let t0 = tb.now();
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
                params: TraversalParams::for_linked_list(
                    list.head,
                    *keys.last().unwrap(),
                    64,
                    client_buf,
                )
                .encode(),
            },
        );
        let t1 = tb.run_until_watch(watch);
        lat.push((t1 - t0) as f64 / MICROS as f64);
        tb.run_until_idle();
    }
    let per_element = (lat[1] - lat[0]) / 28.0;
    assert!(
        (1.0..2.5).contains(&per_element),
        "per-element cost = {per_element} us (expected ~1.5 us PCIe read)"
    );
}

#[test]
fn get_kernel_hash_table_lookup() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(GetKernel::new()));

    let keys: Vec<u64> = (1..=16).collect();
    let ht = build_hash_table(tb.mem(SERVER), server_buf, 256, &keys, 128);

    for &key in &keys {
        let watch = tb.add_watch(CLIENT, client_buf, 128);
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::GET,
                params: GetParams {
                    entry_addr: ht.entry_addr(key),
                    key,
                    target_address: client_buf,
                    chained: false,
                }
                .encode(),
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(
            tb.mem(CLIENT).read(client_buf, 128),
            value_pattern(key, 128)
        );
        tb.run_until_idle();
    }
}

#[test]
fn consistency_kernel_returns_verified_objects() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));

    let store = build_object_store(tb.mem(SERVER), server_buf, 4, 512);
    for (i, &addr) in store.object_addrs.clone().iter().enumerate() {
        let size = store.object_size();
        let watch = tb.add_watch(CLIENT, client_buf, u64::from(size));
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::CONSISTENCY,
                params: ConsistencyParams {
                    object_addr: addr,
                    object_len: size,
                    target_address: client_buf,
                }
                .encode(),
            },
        );
        tb.run_until_watch(watch);
        let got = tb.mem(CLIENT).read(client_buf, size as usize);
        assert_eq!(&got[8..], value_pattern(i as u64 + 1, 512), "object {i}");
        assert!(
            strom::kernels::consistency::verify_object(&got),
            "returned object carries a valid CRC"
        );
        tb.run_until_idle();
    }
}

#[test]
fn consistency_kernel_retries_on_injected_failures() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));
    tb.fabric_mut(SERVER).set_failure_rate(1.0); // Every first read fails.

    let store = build_object_store(tb.mem(SERVER), server_buf, 1, 256);
    let size = store.object_size();
    let watch = tb.add_watch(CLIENT, client_buf, u64::from(size));
    let t0 = tb.now();
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: strom::nic::RpcOpCode::CONSISTENCY,
            params: ConsistencyParams {
                object_addr: store.object_addrs[0],
                object_len: size,
                target_address: client_buf,
            }
            .encode(),
        },
    );
    let t1 = tb.run_until_watch(watch);
    // The retry succeeded and the object is intact.
    let got = tb.mem(CLIENT).read(client_buf, size as usize);
    assert!(strom::kernels::consistency::verify_object(&got));
    // The retry cost one extra PCIe read, not a network round trip.
    let us = (t1 - t0) as f64 / MICROS as f64;
    assert!(us < 12.0, "retried lookup took {us} us");
    tb.run_until_idle();
}

#[test]
fn traversal_miss_writes_error_sentinel() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
    let list = build_linked_list(tb.mem(SERVER), server_buf, &[1, 2, 3], 64);

    let watch = tb.add_watch(CLIENT, client_buf, 8);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(list.head, 999, 64, client_buf).encode(),
        },
    );
    tb.run_until_watch(watch);
    let word = tb.mem(CLIENT).read_u64(client_buf);
    assert_eq!(
        decode_error(word),
        Some(strom::kernels::framework::ERR_NOT_FOUND)
    );
    tb.run_until_idle();
}

#[test]
fn kernels_work_over_a_lossy_link() {
    let mut tb = testbed();
    tb.set_loss_rate(0.03);
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
    let keys: Vec<u64> = (1..=8).map(|i| i * 7).collect();
    let list = build_linked_list(tb.mem(SERVER), server_buf, &keys, 64);

    for (i, &key) in keys.iter().enumerate() {
        let target = client_buf + (i as u64) * 64;
        let watch = tb.add_watch(CLIENT, target, 64);
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
                params: TraversalParams::for_linked_list(list.head, key, 64, target).encode(),
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(tb.mem(CLIENT).read(target, 64), value_pattern(key, 64));
    }
    tb.run_until_idle();
}

#[test]
fn traversal_kernel_follows_hash_chains() {
    // §6.2: on a bucket miss "the remote NIC could … fetch the next hash
    // table entry in case the implementation uses chaining for collision
    // resolution" — the same kernel, parametrized with a next pointer.
    use strom::kernels::layouts::build_chained_hash_table;

    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));

    // Severely undersized table: 4 entries x 2 buckets for 24 keys.
    let keys: Vec<u64> = (1..=24).collect();
    let ht = build_chained_hash_table(tb.mem(SERVER), server_buf, 4, &keys, 64);
    assert!(ht.overflow_entries > 0);

    for &key in &keys {
        let watch = tb.add_watch(CLIENT, client_buf, 64);
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
                params: ht.get_params(key, client_buf).encode(),
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(
            tb.mem(CLIENT).read(client_buf, 64),
            value_pattern(key, 64),
            "key {key}"
        );
        tb.run_until_idle();
    }

    // A missing key walks the whole chain and errors out.
    let watch = tb.add_watch(CLIENT, client_buf, 8);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: strom::nic::RpcOpCode::TRAVERSAL,
            params: ht.get_params(999, client_buf).encode(),
        },
    );
    tb.run_until_watch(watch);
    let word = tb.mem(CLIENT).read_u64(client_buf);
    assert_eq!(
        decode_error(word),
        Some(strom::kernels::framework::ERR_NOT_FOUND)
    );
    tb.run_until_idle();
}
