//! Bring-up and controller-interface integration tests: ARP resolution
//! over the simulated wire (§4.1) and the Controller's status registers
//! (§4.3).

use strom::nic::{NicConfig, Testbed, WorkRequest};

const QP: u32 = 1;

#[test]
fn arp_bring_up_resolves_both_peers() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    assert!(!tb.resolved(0));
    assert!(!tb.resolved(1));
    let t = tb.bring_up();
    assert!(tb.resolved(0));
    assert!(tb.resolved(1));
    // Four minimum-size frames over the wire: well under 10 µs.
    assert!(t < 10_000_000, "bring-up took {t} ps");
}

#[test]
fn traffic_after_bring_up_works() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.bring_up();
    tb.connect_qp(QP);
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, b"post-arp traffic");
    let watch = tb.add_watch(1, dst, 16);
    tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 16,
        },
    );
    tb.run_until_watch(watch);
    assert_eq!(tb.mem(1).read(dst, 16), b"post-arp traffic");
    tb.run_until_idle();
}

#[test]
fn status_registers_track_activity() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &vec![1u8; 10_000]);

    let before = tb.status(0);
    assert_eq!(before.commands, 0);
    assert_eq!(before.frames_rx, 0);

    for i in 0..3u64 {
        let h = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst + i * 10_000,
                local_vaddr: src,
                len: 10_000,
            },
        );
        tb.run_until_complete(0, h);
    }
    tb.run_until_idle();

    let client = tb.status(0);
    let server = tb.status(1);
    assert_eq!(client.commands, 3, "three doorbells rung");
    assert!(client.frames_rx >= 3, "at least one ACK per write");
    assert_eq!(server.payload_bytes_rx, 30_000);
    assert_eq!(client.retransmissions, 0);
    assert_eq!(server.frames_parse_dropped, 0);
    assert_eq!(server.kernel_invocations, 0);
}

#[test]
fn status_registers_count_kernel_activity() {
    use strom::kernels::layouts::build_linked_list;
    use strom::kernels::traversal::{TraversalKernel, TraversalParams};
    use strom::nic::RpcOpCode;

    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let client_buf = tb.pin(0, 1 << 20);
    let server_buf = tb.pin(1, 1 << 20);
    tb.deploy_kernel(1, Box::new(TraversalKernel::new()));
    let list = build_linked_list(tb.mem(1), server_buf, &[1, 2, 3], 32);

    let watch = tb.add_watch(0, client_buf, 32);
    tb.post(
        0,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(list.head, 2, 32, client_buf).encode(),
        },
    );
    tb.run_until_watch(watch);
    tb.run_until_idle();
    let server = tb.status(1);
    assert_eq!(server.kernel_invocations, 1);
    assert_eq!(server.rpc_unmatched, 0);
}
