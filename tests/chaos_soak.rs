//! Chaos soak harness: seeded fault schedules composing bursty loss,
//! corruption, reordering, and duplication over the full testbed.
//!
//! Every run is parameterized by a single `u64` seed via
//! [`strom::nic::chaos_model`]; the same seed also seeds the testbed
//! RNG, so any failure reproduces exactly from its seed. The harness
//! checks the robustness contract end to end: byte-for-byte payload
//! integrity, no stuck QPs, bounded retransmissions, the simulation
//! quiesces, and corrupted frames are provably dropped by the ICRC.

use strom::kernels::consistency::{self, ConsistencyKernel, ConsistencyParams};
use strom::kernels::get::{GetKernel, GetParams};
use strom::kernels::layouts::{
    build_hash_table, build_linked_list, build_object_store, value_pattern,
};
use strom::kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom::kernels::traversal::{TraversalKernel, TraversalParams};
use strom::nic::cluster_shuffle::{pair_qpn, run_shuffle, ShuffleSpec};
use strom::nic::{
    active_fault_types, chaos_model, ClusterTestbed, CompletionStatus, LinkFaultModel, NicConfig,
    RpcOpCode, StatusRegisters, SwitchParams, Testbed, WorkRequest,
};
use strom::sim::time::MICROS;
use strom::sim::{default_workers, parallel_map, SimRng};
use strom::telemetry::{MetricsSnapshot, TraceRecord};

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

/// Livelock budget: generous for the small workloads below; a
/// retransmission storm that never converges exhausts it instead of
/// hanging the suite.
const EVENT_BUDGET: u64 = 50_000_000;

/// One randomly generated data-plane operation.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u32 },
    Read { off: u64, len: u32 },
}

fn rand_ops(rng: &mut SimRng, max: u64) -> Vec<Op> {
    (0..rng.range(2, max))
        .map(|_| {
            let off = rng.below(1 << 20);
            let len = rng.range(1, 20_000) as u32;
            if rng.chance(0.5) {
                Op::Write { off, len }
            } else {
                Op::Read { off, len }
            }
        })
        .collect()
}

/// The trace stream a traced chaos run produced.
#[derive(Debug, PartialEq)]
struct ChaosTrace {
    fingerprint: u64,
    emitted: u64,
    records: Vec<TraceRecord>,
}

/// Everything a chaos run observed, for determinism comparisons.
#[derive(Debug, PartialEq)]
struct ChaosOutcome {
    remote_image: Vec<u8>,
    local_image: Vec<u8>,
    retransmissions: u64,
    status: [StatusRegisters; 2],
    /// Completion-latency histograms and dispatch counters.
    metrics: MetricsSnapshot,
    /// `Some` when the run was traced (`trace_capacity` was set).
    trace: Option<ChaosTrace>,
}

/// Drives a mixed WRITE/READ workload under `model`, checking the
/// robustness contract; returns the observables. `trace_capacity`
/// enables the structured trace ring for the run.
fn run_chaos_ops(
    ops: &[Op],
    model: LinkFaultModel,
    seed: u64,
    trace_capacity: Option<usize>,
) -> ChaosOutcome {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = seed;
    run_chaos_ops_on(
        Testbed::new(cfg).into_cluster(),
        ops,
        model,
        seed,
        trace_capacity,
    )
}

/// [`run_chaos_ops`] on a caller-supplied cluster geometry — the N=2
/// smoke test drives the same workload through
/// [`ClusterTestbed::transparent_pair`] and the [`Testbed`] wrapper and
/// compares the outcomes bit for bit.
fn run_chaos_ops_on(
    mut tb: ClusterTestbed,
    ops: &[Op],
    model: LinkFaultModel,
    seed: u64,
    trace_capacity: Option<usize>,
) -> ChaosOutcome {
    if let Some(capacity) = trace_capacity {
        tb.enable_tracing(capacity);
    }
    tb.connect_qp(QP);
    tb.set_fault_model(model);
    let a = tb.pin(CLIENT, 4 << 20);
    let b = tb.pin(SERVER, 4 << 20);
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut init = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut init);
    tb.mem(CLIENT).write(a, &init);
    rng.fill_bytes(&mut init);
    tb.mem(SERVER).write(b, &init);

    for op in ops {
        let h = match *op {
            Op::Write { off, len } => tb.post(
                CLIENT,
                QP,
                WorkRequest::Write {
                    remote_vaddr: b + (2 << 20) + off,
                    local_vaddr: a + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
            Op::Read { off, len } => tb.post(
                CLIENT,
                QP,
                WorkRequest::Read {
                    remote_vaddr: b + off,
                    local_vaddr: a + (2 << 20) + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
        };
        tb.run_until_complete(CLIENT, h);
        assert_eq!(
            tb.completion_status(CLIENT, h),
            Some(CompletionStatus::Success),
            "seed {seed}: op {op:?} did not complete successfully under {model:?}"
        );
    }
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {seed}: simulation failed to quiesce under {model:?}"
    );
    assert!(
        !tb.qp_has_outstanding(CLIENT, QP),
        "seed {seed}: QP stuck with outstanding work after quiesce"
    );
    assert!(
        !tb.qp_errored(CLIENT, QP),
        "seed {seed}: survivable fault schedule exhausted the retry budget"
    );
    let trace = trace_capacity.map(|_| ChaosTrace {
        fingerprint: tb.trace().fingerprint(),
        emitted: tb.trace().emitted(),
        records: tb.trace().records(),
    });
    ChaosOutcome {
        remote_image: tb.mem(SERVER).read(b + (2 << 20), 2 << 20),
        local_image: tb.mem(CLIENT).read(a + (2 << 20), 2 << 20),
        retransmissions: tb.retransmissions(CLIENT),
        status: [tb.status(CLIENT), tb.status(SERVER)],
        metrics: tb.metrics().snapshot(),
        trace,
    }
}

/// The reference: the same ops applied to plain byte arrays.
fn run_reference(ops: &[Op], seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut src);
    let mut remote_src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut remote_src);
    let mut remote = vec![0u8; 2 << 20];
    let mut local = vec![0u8; 2 << 20];
    for op in ops {
        match *op {
            Op::Write { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                remote[off..off + len].copy_from_slice(&src[off..off + len]);
            }
            Op::Read { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                local[off..off + len].copy_from_slice(&remote_src[off..off + len]);
            }
        }
    }
    (remote, local)
}

/// The headline soak: ≥ 20 distinct seeds, each composing at least two
/// fault types, each verified byte-for-byte against the reference.
/// Aggregated over the corpus, every fault dimension must actually have
/// fired — including corrupted frames provably dropped by the ICRC.
#[test]
fn chaos_soak_data_plane_survives_composed_faults() {
    // Each seed drives a fully independent simulation (its own testbed,
    // its own RNG), so the corpus fans out across worker threads;
    // results come back in seed order and are aggregated exactly as the
    // sequential loop would (the per-seed outcomes are bit-identical —
    // see `parallel_soak_is_bit_identical_to_sequential`).
    let outcomes = parallel_map((0..24u64).collect(), default_workers(), |seed| {
        let model = chaos_model(seed);
        assert!(active_fault_types(&model) >= 2, "seed {seed}: {model:?}");
        let ops = rand_ops(&mut SimRng::seed(seed ^ 0x0b5), 7);
        let outcome = run_chaos_ops(&ops, model, seed, None);
        let (want_remote, want_local) = run_reference(&ops, seed);
        assert_eq!(
            outcome.remote_image, want_remote,
            "seed {seed}: remote memory diverged under {model:?}"
        );
        assert_eq!(
            outcome.local_image, want_local,
            "seed {seed}: read-back memory diverged under {model:?}"
        );
        // Bounded retransmissions: a handful of ops must not trigger a
        // storm (go-back-N over these workloads resends at most a few
        // windows per timeout, and the budget caps consecutive timeouts).
        assert!(
            outcome.retransmissions < 10_000,
            "seed {seed}: {} retransmissions looks like a storm",
            outcome.retransmissions
        );
        outcome
    });
    let mut total = StatusRegisters::default();
    let mut total_retx = 0u64;
    for (seed, outcome) in outcomes.into_iter().enumerate() {
        total_retx += outcome.retransmissions;
        for s in outcome.status {
            total.frames_crc_dropped += s.frames_crc_dropped;
            total.frames_lost += s.frames_lost;
            total.frames_reordered += s.frames_reordered;
            total.frames_duplicated += s.frames_duplicated;
            total.timeouts += s.timeouts;
            assert_eq!(s.qps_in_error, 0, "seed {seed}");
        }
    }
    // Across the corpus every fault dimension fired and was survived.
    assert!(total.frames_lost > 0, "no frames lost: {total:?}");
    assert!(
        total.frames_crc_dropped > 0,
        "corruption was never caught by the ICRC: {total:?}"
    );
    assert!(total.frames_reordered > 0, "no reordering: {total:?}");
    assert!(total.frames_duplicated > 0, "no duplication: {total:?}");
    assert!(total_retx > 0, "faults never forced a retransmission");
}

/// Identical seed + fault configuration ⇒ bit-identical memory images,
/// retransmission counts, and status registers across two runs.
#[test]
fn chaos_runs_are_bit_identical_for_identical_seeds() {
    for seed in [3u64, 11, 17, 23] {
        let model = chaos_model(seed);
        let ops = rand_ops(&mut SimRng::seed(seed ^ 0x0b5), 7);
        let first = run_chaos_ops(&ops, model, seed, None);
        let second = run_chaos_ops(&ops, model, seed, None);
        assert_eq!(first, second, "seed {seed}: chaos run is not reproducible");
    }
}

/// Telemetry determinism: two traced same-seed runs produce identical
/// trace streams (record-for-record, plus the FNV fingerprint over the
/// full emission history) and identical histogram buckets — and turning
/// tracing ON does not perturb the simulation itself.
#[test]
fn traced_chaos_runs_emit_identical_telemetry() {
    for seed in [2u64, 13, 21] {
        let model = chaos_model(seed);
        let ops = rand_ops(&mut SimRng::seed(seed ^ 0x0b5), 7);
        let untraced = run_chaos_ops(&ops, model, seed, None);
        let first = run_chaos_ops(&ops, model, seed, Some(1 << 15));
        let second = run_chaos_ops(&ops, model, seed, Some(1 << 15));

        // Identical trace streams and histogram buckets across reruns.
        assert_eq!(first, second, "seed {seed}: traced run is not reproducible");
        let trace = first.trace.as_ref().expect("tracing was enabled");
        assert!(
            trace.emitted > 0,
            "seed {seed}: a chaos run must emit trace events"
        );
        assert_eq!(
            trace.fingerprint,
            second.trace.as_ref().unwrap().fingerprint,
            "seed {seed}"
        );

        // Tracing must be observation-only: every simulation observable
        // matches the untraced run. (The metrics snapshots differ only by
        // the dispatch counter tracing registers, so compare the rest
        // field by field.)
        assert_eq!(first.remote_image, untraced.remote_image, "seed {seed}");
        assert_eq!(first.local_image, untraced.local_image, "seed {seed}");
        assert_eq!(
            first.retransmissions, untraced.retransmissions,
            "seed {seed}"
        );
        assert_eq!(first.status, untraced.status, "seed {seed}");
        assert_eq!(
            first.metrics.histograms, untraced.metrics.histograms,
            "seed {seed}: tracing changed a latency histogram"
        );
    }
}

/// Determinism regression for the parallel runner: fanning the soak out
/// across threads yields byte-identical per-seed reports (memory images,
/// retransmission counts, status registers) to the sequential path.
#[test]
fn parallel_soak_is_bit_identical_to_sequential() {
    let run = |seed: u64| {
        let model = chaos_model(seed);
        let ops = rand_ops(&mut SimRng::seed(seed ^ 0x0b5), 7);
        run_chaos_ops(&ops, model, seed, None)
    };
    let seeds: Vec<u64> = (0..8).collect();
    let sequential: Vec<ChaosOutcome> = seeds.iter().map(|&s| run(s)).collect();
    let parallel = parallel_map(seeds, 4, run);
    assert_eq!(
        parallel, sequential,
        "parallel execution must not change any per-seed observable"
    );
}

/// Runs all four paper kernels (traversal, get, consistency, shuffle)
/// under a composed fault schedule and verifies their results
/// byte-for-byte.
fn run_chaos_kernels(seed: u64) {
    let model = chaos_model(seed);
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_fault_model(model);
    let client_buf = tb.pin(CLIENT, 2 << 20);
    let src = tb.pin(CLIENT, 2 << 20);
    let server = tb.pin(SERVER, 16 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
    tb.deploy_kernel(SERVER, Box::new(GetKernel::new()));
    tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));
    tb.deploy_kernel(SERVER, Box::new(ShuffleKernel::new()));

    // Traversal: walk a linked list to its last node.
    let keys: Vec<u64> = (1..=12u64).map(|i| i * 10).collect();
    let list = build_linked_list(tb.mem(SERVER), server, &keys, 64);
    let tail_key = *list.keys.last().unwrap();
    let target = client_buf;
    let w = tb.add_watch(CLIENT, target, 64);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(list.head, tail_key, 64, target).encode(),
        },
    );
    tb.run_until_watch(w);
    assert_eq!(
        tb.mem(CLIENT).read(target, 64),
        value_pattern(tail_key, 64),
        "seed {seed}: traversal result corrupted under {model:?}"
    );

    // Get: hash-table lookup.
    let ht = build_hash_table(tb.mem(SERVER), server + (4 << 20), 64, &[5, 6, 7], 64);
    let target = client_buf + 4096;
    let w = tb.add_watch(CLIENT, target, 64);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::GET,
            params: GetParams {
                entry_addr: ht.entry_addr(6),
                key: 6,
                target_address: target,
                chained: false,
            }
            .encode(),
        },
    );
    tb.run_until_watch(w);
    assert_eq!(
        tb.mem(CLIENT).read(target, 64),
        value_pattern(6, 64),
        "seed {seed}: get result corrupted under {model:?}"
    );

    // Consistency: fetch an object and verify its checksum word.
    let store = build_object_store(tb.mem(SERVER), server + (8 << 20), 1, 256);
    let size = store.object_size();
    let target = client_buf + 8192;
    let w = tb.add_watch(CLIENT, target, u64::from(size));
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CONSISTENCY,
            params: ConsistencyParams {
                object_addr: store.object_addrs[0],
                object_len: size,
                target_address: target,
            }
            .encode(),
        },
    );
    tb.run_until_watch(w);
    assert!(
        consistency::verify_object(&tb.mem(CLIENT).read(target, size as usize)),
        "seed {seed}: consistency object corrupted under {model:?}"
    );

    // Shuffle: stream tuples through the partitioning kernel.
    let parts = 4u32;
    let capacity = 1u32 << 16;
    let bases: Vec<u64> = (0..u64::from(parts))
        .map(|i| server + (12 << 20) + i * u64::from(capacity))
        .collect();
    let histogram = encode_histogram(&bases.iter().map(|&b| (b, capacity)).collect::<Vec<_>>());
    tb.mem(SERVER).write(server + (11 << 20), &histogram);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::SHUFFLE,
            params: ShuffleParams {
                histogram_addr: server + (11 << 20),
                num_partitions: parts,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    let mut rng = SimRng::seed(seed ^ 0x54f1e);
    let mut data = vec![0u8; 2_000 * 8];
    rng.fill_bytes(&mut data);
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "seed {seed}: kernels run failed to quiesce under {model:?}"
    );
    let values: Vec<u64> = data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let want = strom::baselines::cpu_partition::software_partition(&values, parts as usize);
    for (pid, base) in bases.iter().enumerate() {
        let expected: Vec<u8> = want.partitions[pid]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        assert_eq!(
            tb.mem(SERVER).read(*base, expected.len()),
            expected,
            "seed {seed}: shuffle partition {pid} corrupted under {model:?}"
        );
    }

    assert!(!tb.qp_has_outstanding(CLIENT, QP), "seed {seed}");
    assert!(!tb.qp_errored(CLIENT, QP), "seed {seed}");
    assert_eq!(tb.fabric(SERVER).unmatched(), 0, "seed {seed}");
}

/// The four paper kernels all survive composed fault schedules with
/// results delivered intact.
#[test]
fn chaos_soak_kernels_survive_composed_faults() {
    parallel_map(
        vec![1u64, 4, 9, 14, 19, 22],
        default_workers(),
        run_chaos_kernels,
    );
}

/// With a dead link (loss = 1.0) the retry budget exhausts: the work
/// request completes with `RetryExceeded`, the QP lands in the terminal
/// error state (visible through the status registers), and the
/// simulation still quiesces — the host is never left hanging.
#[test]
fn retry_budget_exhaustion_errors_the_qp() {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = 7;
    let max_retries = cfg.max_retries;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_loss_rate(1.0);
    let a = tb.pin(CLIENT, 1 << 20);
    let b = tb.pin(SERVER, 1 << 20);

    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: b,
            local_vaddr: a,
            len: 4096,
        },
    );
    tb.run_until_complete(CLIENT, h);
    assert_eq!(
        tb.completion_status(CLIENT, h),
        Some(CompletionStatus::RetryExceeded)
    );
    assert!(tb.qp_errored(CLIENT, QP));
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "an errored QP must not keep the timer wheel spinning"
    );
    assert!(!tb.qp_has_outstanding(CLIENT, QP));

    let status = tb.status(CLIENT);
    assert_eq!(status.qps_in_error, 1);
    assert!(
        status.timeouts > u64::from(max_retries),
        "budget must only exhaust after {max_retries} consecutive timeouts, saw {}",
        status.timeouts
    );
    assert!(
        status.backoff_events > 0,
        "consecutive timeouts must back off exponentially"
    );

    // Posting to the errored QP fails fast with an error completion
    // rather than retrying forever.
    let h2 = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: b,
            local_vaddr: a,
            len: 64,
        },
    );
    tb.run_until_complete(CLIENT, h2);
    assert_eq!(
        tb.completion_status(CLIENT, h2),
        Some(CompletionStatus::RetryExceeded)
    );
}

/// Duplicate delivery of every frame — requests, ACKs, and read
/// responses — is absorbed: duplicates are dropped before the data path
/// (PSN dup-detection on the responder, the stale-PSN classify path on
/// the requester), so payloads land exactly once.
#[test]
fn duplicated_frames_are_dropped_before_the_data_path() {
    let mut model = LinkFaultModel::none();
    model.duplicate_rate = 1.0;
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = 5;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_fault_model(model);
    let a = tb.pin(CLIENT, 1 << 20);
    let b = tb.pin(SERVER, 1 << 20);

    let mut rng = SimRng::seed(55);
    let mut data = vec![0u8; 10_000];
    rng.fill_bytes(&mut data);
    tb.mem(CLIENT).write(a, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: b,
            local_vaddr: a,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);

    let mut remote = vec![0u8; 20_000];
    rng.fill_bytes(&mut remote);
    tb.mem(SERVER).write(b + (1 << 19), &remote);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Read {
            remote_vaddr: b + (1 << 19),
            local_vaddr: a + (1 << 19),
            len: remote.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    assert!(tb.run_until_idle_bounded(EVENT_BUDGET));

    assert_eq!(tb.mem(SERVER).read(b, data.len()), data);
    assert_eq!(tb.mem(CLIENT).read(a + (1 << 19), remote.len()), remote);
    // Every frame was delivered twice...
    assert!(tb.status(SERVER).frames_duplicated > 0);
    assert!(tb.status(CLIENT).frames_duplicated > 0);
    // ...but each WRITE payload byte was written to host memory once.
    assert_eq!(tb.status(SERVER).payload_bytes_rx, data.len() as u64);
    assert!(!tb.qp_has_outstanding(CLIENT, QP));
    assert!(!tb.qp_errored(CLIENT, QP));
}

/// Out-of-order delivery of ACKs and read responses (reordering jitter
/// with no loss) is recovered from without corrupting data.
#[test]
fn reordered_acks_and_responses_recover() {
    let mut model = LinkFaultModel::none();
    model.reorder_rate = 0.3;
    model.reorder_jitter = 5 * MICROS;
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = 6;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_fault_model(model);
    let a = tb.pin(CLIENT, 1 << 20);
    let b = tb.pin(SERVER, 1 << 20);

    let mut rng = SimRng::seed(66);
    let mut data = vec![0u8; 60_000];
    rng.fill_bytes(&mut data);
    tb.mem(CLIENT).write(a, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: b,
            local_vaddr: a,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);

    let mut remote = vec![0u8; 60_000];
    rng.fill_bytes(&mut remote);
    tb.mem(SERVER).write(b + (1 << 19), &remote);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Read {
            remote_vaddr: b + (1 << 19),
            local_vaddr: a + (1 << 19),
            len: remote.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    assert!(tb.run_until_idle_bounded(EVENT_BUDGET));

    assert_eq!(tb.mem(SERVER).read(b, data.len()), data);
    assert_eq!(tb.mem(CLIENT).read(a + (1 << 19), remote.len()), remote);
    let reordered = tb.status(CLIENT).frames_reordered + tb.status(SERVER).frames_reordered;
    assert!(reordered > 0, "jitter never reordered a frame");
    assert!(!tb.qp_has_outstanding(CLIENT, QP));
    assert!(!tb.qp_errored(CLIENT, QP));
}

/// Four-node switched soak: 8 seeds, each pinning two *independent*
/// composed fault models (≥ 2 active fault types apiece) to two distinct
/// switch egress ports while the rest of the fabric stays clean. The
/// all-to-all shuffle inside [`run_shuffle`] verifies every byte of
/// every flow — including the flows that never touch a faulty port, so
/// a fault leaking across ports would surface as a foreign-flow
/// corruption, not just a retransmission.
#[test]
fn cluster_chaos_soak_survives_per_port_faults() {
    let outcomes = parallel_map((0..8u64).collect(), default_workers(), |seed| {
        let mut spec = ShuffleSpec::new(4, 120 + (seed as usize) * 17, 0xC1A0_0000 + seed);
        let port_a = (seed as usize) % 4;
        let port_b = (port_a + 1 + (seed as usize) % 3) % 4;
        assert_ne!(port_a, port_b);
        let model_a = chaos_model(seed ^ 0x0A);
        let model_b = chaos_model(seed ^ 0x0B);
        assert!(
            active_fault_types(&model_a) >= 2,
            "seed {seed}: {model_a:?}"
        );
        assert!(
            active_fault_types(&model_b) >= 2,
            "seed {seed}: {model_b:?}"
        );
        spec.port_faults = vec![(port_a, model_a), (port_b, model_b)];
        run_shuffle(&spec)
    });
    let recovered: u64 = outcomes.iter().map(|o| o.retransmissions).sum();
    assert!(
        recovered > 0,
        "per-port faults never forced a retransmission across 8 seeds"
    );
}

/// A dead switch port (loss = 1.0 toward node 1) exhausts the retry
/// budget for the flow that crosses it — and *only* that flow: traffic
/// between healthy ports completes byte-for-byte while the dead flow
/// errors out, and the simulation still quiesces.
#[test]
fn dead_port_retry_exhaustion_is_isolated_to_that_port() {
    const N: usize = 4;
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = 0x1507;
    let mut tb = ClusterTestbed::switched(cfg, N, SwitchParams::default());
    tb.set_port_fault_model(1, LinkFaultModel::bernoulli(1.0));
    let (q01, q02, q23) = (pair_qpn(N, 0, 1), pair_qpn(N, 0, 2), pair_qpn(N, 2, 3));
    tb.connect_qp_between(0, 1, q01);
    tb.connect_qp_between(0, 2, q02);
    tb.connect_qp_between(2, 3, q23);
    let bufs: Vec<u64> = (0..N).map(|n| tb.pin(n, 1 << 20)).collect();
    let mut rng = SimRng::seed(0x0150_70b5);
    let mut data_02 = vec![0u8; 50_000];
    rng.fill_bytes(&mut data_02);
    let mut data_23 = vec![0u8; 50_000];
    rng.fill_bytes(&mut data_23);
    tb.mem(0).write(bufs[0], &data_02);
    tb.mem(2).write(bufs[2], &data_23);

    // All three flows contend for the switch concurrently.
    let h01 = tb.post(
        0,
        q01,
        WorkRequest::Write {
            remote_vaddr: bufs[1],
            local_vaddr: bufs[0] + (1 << 19),
            len: 4096,
        },
    );
    let h02 = tb.post(
        0,
        q02,
        WorkRequest::Write {
            remote_vaddr: bufs[2] + (1 << 19),
            local_vaddr: bufs[0],
            len: data_02.len() as u32,
        },
    );
    let h23 = tb.post(
        2,
        q23,
        WorkRequest::Write {
            remote_vaddr: bufs[3],
            local_vaddr: bufs[2],
            len: data_23.len() as u32,
        },
    );
    tb.run_until_complete(0, h01);
    tb.run_until_complete(0, h02);
    tb.run_until_complete(2, h23);
    assert!(
        tb.run_until_idle_bounded(EVENT_BUDGET),
        "a dead port must not keep the simulation spinning"
    );

    // The dead-port flow exhausted its budget...
    assert_eq!(
        tb.completion_status(0, h01),
        Some(CompletionStatus::RetryExceeded)
    );
    assert!(tb.qp_errored(0, q01));
    // ...while both healthy flows delivered every byte.
    assert_eq!(
        tb.completion_status(0, h02),
        Some(CompletionStatus::Success)
    );
    assert_eq!(
        tb.completion_status(2, h23),
        Some(CompletionStatus::Success)
    );
    assert!(!tb.qp_errored(0, q02));
    assert!(!tb.qp_errored(2, q23));
    assert_eq!(tb.mem(2).read(bufs[2] + (1 << 19), data_02.len()), data_02);
    assert_eq!(tb.mem(3).read(bufs[3], data_23.len()), data_23);
    // The faults were injected at the dead port, not dropped by queueing.
    assert_eq!(
        tb.switch_tail_drops(),
        0,
        "default queues never overflow here"
    );
}

/// The N=2 cluster geometries — the raw transparent pair and the
/// [`Testbed`] wrapper — reproduce the two-host chaos soak bit for bit:
/// memory images, retransmission counts, status registers, metrics, and
/// the telemetry trace fingerprint.
#[test]
fn n2_cluster_reproduces_two_host_chaos_fingerprints() {
    for seed in [3u64, 13] {
        let model = chaos_model(seed);
        let ops = rand_ops(&mut SimRng::seed(seed ^ 0x0b5), 7);
        let via_wrapper = run_chaos_ops(&ops, model, seed, Some(1 << 15));
        let mut cfg = NicConfig::ten_gig();
        cfg.seed = seed;
        let direct = run_chaos_ops_on(
            ClusterTestbed::transparent_pair(cfg),
            &ops,
            model,
            seed,
            Some(1 << 15),
        );
        assert_eq!(
            via_wrapper, direct,
            "seed {seed}: the N=2 transparent cluster diverged from the two-host path"
        );
        assert!(via_wrapper.trace.is_some());
    }
}
