//! The §6.3 scenario for real: a client reads an object through the
//! consistency kernel *while the server host is mid-update*. The kernel's
//! first DMA read observes the torn state (stale CRC over new bytes),
//! fails the checksum, and retries over PCIe until the writer finishes —
//! no fault injection involved; the inconsistency arises from genuine
//! concurrent modification of host memory.

use strom::kernels::consistency::{verify_object, ConsistencyKernel, ConsistencyParams};
use strom::kernels::crc64::crc64;
use strom::kernels::layouts::{build_object_store, value_pattern};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::time::MICROS;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

#[test]
fn kernel_retries_through_a_concurrent_update() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));

    let payload_size = 1024u32;
    let store = build_object_store(tb.mem(SERVER), server_buf, 1, payload_size);
    let addr = store.object_addrs[0];
    let size = store.object_size();

    // The server host begins an update: it writes the new payload bytes
    // but has NOT yet written the matching CRC — the torn state a
    // one-sided reader can observe (FaRM/Pilaf's optimistic-read hazard).
    let new_payload = value_pattern(0xBEEF, payload_size);
    tb.mem(SERVER).write(addr + 8, &new_payload);

    // Client issues the consistency RPC while the object is torn.
    let watch = tb.add_watch(CLIENT, client_buf, u64::from(size));
    let t0 = tb.now();
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CONSISTENCY,
            params: ConsistencyParams {
                object_addr: addr,
                object_len: size,
                target_address: client_buf,
            }
            .encode(),
        },
    );

    // Let the kernel start reading (and failing): run ~12 µs of simulated
    // time — several PCIe retry cycles — with the object still torn.
    while tb.now() < t0 + 12 * MICROS {
        assert!(
            tb.step(),
            "simulation must stay busy while the kernel retries"
        );
    }
    assert!(
        tb.watch_fired(watch).is_none(),
        "the kernel must not hand out a torn object"
    );

    // The server host completes its update: CRC now matches the payload.
    let new_crc = crc64(&new_payload);
    tb.mem(SERVER).write(addr, &new_crc.to_le_bytes());

    // The kernel's next retry succeeds and the client gets the NEW object.
    let t1 = tb.run_until_watch(watch);
    let got = tb.mem(CLIENT).read(client_buf, size as usize);
    assert!(verify_object(&got), "delivered object must be consistent");
    assert_eq!(&got[8..], new_payload, "the new version is delivered");
    assert!(t1 > t0 + 12 * MICROS);
    tb.run_until_idle();
}

#[test]
fn torn_read_is_never_exposed_to_the_client_buffer() {
    // Sweep the moment the writer finishes relative to the RPC: whatever
    // the interleaving, the object that lands in client memory always
    // passes its own checksum.
    for fix_after_us in [2u64, 5, 9, 14, 20] {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(QP);
        let client_buf = tb.pin(CLIENT, 1 << 20);
        let server_buf = tb.pin(SERVER, 1 << 20);
        tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));
        let store = build_object_store(tb.mem(SERVER), server_buf, 1, 512);
        let addr = store.object_addrs[0];
        let size = store.object_size();

        let new_payload = value_pattern(7777, 512);
        tb.mem(SERVER).write(addr + 8, &new_payload);

        let watch = tb.add_watch(CLIENT, client_buf, u64::from(size));
        let t0 = tb.now();
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: RpcOpCode::CONSISTENCY,
                params: ConsistencyParams {
                    object_addr: addr,
                    object_len: size,
                    target_address: client_buf,
                }
                .encode(),
            },
        );
        while tb.now() < t0 + fix_after_us * MICROS && tb.watch_fired(watch).is_none() {
            assert!(tb.step());
        }
        // Writer completes (CRC last, like a version stamp).
        let crc = crc64(&new_payload);
        tb.mem(SERVER).write(addr, &crc.to_le_bytes());
        tb.run_until_watch(watch);
        let got = tb.mem(CLIENT).read(client_buf, size as usize);
        assert!(
            verify_object(&got),
            "torn object escaped at fix_after = {fix_after_us} µs"
        );
        tb.run_until_idle();
    }
}
