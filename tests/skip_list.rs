//! Two-phase skip-list lookups through the traversal kernel — exercising
//! the §6.2 claim that the kernel's parameters cover "linked lists, hash
//! tables, trees, graphs, skip lists, and other data structures" without
//! changing kernel code.

use strom::kernels::layouts::{build_linked_list, build_skip_list, value_pattern};
use strom::kernels::traversal::{TraversalKernel, TraversalParams};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::time::MICROS;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
    tb
}

/// Runs the two-phase lookup; returns the value bytes and elapsed time.
fn skip_lookup(
    tb: &mut Testbed,
    list: &strom::kernels::layouts::SkipList,
    probe: u64,
    client_buf: u64,
    value_size: u32,
) -> (Vec<u8>, u64) {
    let t0 = tb.now();
    // Phase 1: express lane returns the 8 B down pointer.
    let w1 = tb.add_watch(CLIENT, client_buf, 8);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: list.express_params(probe, client_buf).encode(),
        },
    );
    tb.run_until_watch(w1);
    let down_ptr = tb.mem(CLIENT).read_u64(client_buf);
    // Phase 2: exact match on the base lane from the down pointer.
    let w2 = tb.add_watch(CLIENT, client_buf + 64, u64::from(value_size));
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: list.base_params(down_ptr, probe, client_buf + 64).encode(),
        },
    );
    let t1 = tb.run_until_watch(w2);
    let value = tb.mem(CLIENT).read(client_buf + 64, value_size as usize);
    tb.run_until_idle();
    (value, t1 - t0)
}

#[test]
fn every_key_is_found_via_two_rpcs() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 2 << 20);
    let keys: Vec<u64> = (1..=64).map(|i| i * 17).collect();
    let list = build_skip_list(tb.mem(SERVER), server_buf, &keys, 48, 8);
    for &key in &keys {
        let (value, _) = skip_lookup(&mut tb, &list, key, client_buf, 48);
        assert_eq!(value, value_pattern(key, 48), "key {key}");
    }
}

#[test]
fn express_lane_beats_flat_traversal_for_deep_keys() {
    // Tail lookup in a 64-element list: flat traversal chases 64 elements
    // over PCIe in one RPC; the skip list does ~8 + 8 hops in two RPCs.
    let keys: Vec<u64> = (1..=64).map(|i| i * 3).collect();
    let deep_key = *keys.last().unwrap();

    // Flat list.
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 2 << 20);
    let flat = build_linked_list(tb.mem(SERVER), server_buf, &keys, 48);
    let watch = tb.add_watch(CLIENT, client_buf, 48);
    let t0 = tb.now();
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(flat.head, deep_key, 48, client_buf).encode(),
        },
    );
    let flat_time = tb.run_until_watch(watch) - t0;
    tb.run_until_idle();

    // Skip list, stride 8.
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 2 << 20);
    let skip = build_skip_list(tb.mem(SERVER), server_buf, &keys, 48, 8);
    let (value, skip_time) = skip_lookup(&mut tb, &skip, deep_key, client_buf, 48);
    assert_eq!(value, value_pattern(deep_key, 48));

    let (flat_us, skip_us) = (
        flat_time as f64 / MICROS as f64,
        skip_time as f64 / MICROS as f64,
    );
    assert!(
        skip_us < flat_us * 0.55,
        "skip list {skip_us:.1} µs must clearly beat flat {flat_us:.1} µs"
    );
}

#[test]
fn probe_below_first_key_lands_on_base_head() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 2 << 20);
    let keys: Vec<u64> = vec![10, 20, 30, 40, 50];
    let list = build_skip_list(tb.mem(SERVER), server_buf, &keys, 16, 2);
    // Probe 10 (the first key) still resolves through the express lane.
    let (value, _) = skip_lookup(&mut tb, &list, 10, client_buf, 16);
    assert_eq!(value, value_pattern(10, 16));
}

#[test]
fn stride_one_degenerates_to_the_base_list() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 2 << 20);
    let keys: Vec<u64> = vec![5, 6, 7];
    let list = build_skip_list(tb.mem(SERVER), server_buf, &keys, 16, 1);
    for &key in &keys {
        let (value, _) = skip_lookup(&mut tb, &list, key, client_buf, 16);
        assert_eq!(value, value_pattern(key, 16));
    }
}
