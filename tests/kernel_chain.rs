//! Integration tests of chained kernel pipelines (§8's "chaining
//! kernels" outlook): empty payloads, in-band error propagation
//! mid-chain, per-stage DMA tag namespacing on the real fabric, and
//! same-seed determinism under the chaos fault schedules.

use strom::kernels::bloom::{BloomFilter, BloomKernel, BloomParams};
use strom::kernels::chains::{crcverify_shuffle, crcverify_shuffle_params};
use strom::kernels::crc_verify::{append_trailer, CrcVerifyKernel, CrcVerifyParams};
use strom::kernels::framework::{KernelChain, StageRoute, ERR_INCONSISTENT};
use strom::kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom::nic::{
    chaos_model, run_crcverify_shuffle, run_filter_agg_hll, ChainSpec, NicConfig, RpcOpCode,
    Testbed, WorkRequest,
};
use strom::sim::{default_workers, parallel_map};

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

#[test]
fn empty_payload_through_a_chain() {
    // A stream that is *only* the CRC trailer: zero payload tuples reach
    // the shuffle stage, the verdict still reports crc64(&[]) and the
    // chain closes cleanly end to end on the wire.
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let client = tb.pin(CLIENT, 1 << 20);
    let server = tb.pin(SERVER, 1 << 20);

    tb.mem(SERVER)
        .write(server, &encode_histogram(&[(server + 4096, 4096)]));
    tb.deploy_kernel(SERVER, Box::new(crcverify_shuffle()));
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            params: crcverify_shuffle_params(
                &CrcVerifyParams {
                    target_address: client,
                },
                &ShuffleParams {
                    histogram_addr: server,
                    num_partitions: 1,
                },
            ),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let stream = append_trailer(&[]);
    tb.mem(CLIENT).write(client + 4096, &stream);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            local_vaddr: client + 4096,
            len: stream.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let verdict = tb.mem(CLIENT).read(client, 16);
    let (crc, len) = CrcVerifyKernel::decode_verdict(&verdict).expect("verdict");
    assert_eq!((crc, len), (strom::kernels::crc64::crc64(&[]), 0));
    let chain = tb
        .fabric(SERVER)
        .kernel(RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE)
        .and_then(|k| k.as_any().downcast_ref::<KernelChain>())
        .expect("chain deployed");
    assert!(!chain.failed());
    // The fabric completed the invocation (not wedged): a fresh
    // invocation with a non-empty stream still runs end to end.
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            params: crcverify_shuffle_params(
                &CrcVerifyParams {
                    target_address: client,
                },
                &ShuffleParams {
                    histogram_addr: server,
                    num_partitions: 1,
                },
            ),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    let payload: Vec<u8> = (0..16u64).flat_map(|v| v.to_le_bytes()).collect();
    let stream = append_trailer(&payload);
    tb.mem(CLIENT).write(client + 8192, &stream);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::CHAIN_CRCVERIFY_SHUFFLE,
            local_vaddr: client + 8192,
            len: stream.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    assert_eq!(tb.mem(SERVER).read(server + 4096, payload.len()), payload);
}

#[test]
fn sentinel_propagates_mid_chain_and_starves_downstream() {
    let mut corrupt = ChainSpec::new(4_000, 0xC0DE);
    corrupt.corrupt = true;
    let run = run_crcverify_shuffle(&corrupt);
    assert_eq!(run.error_code, Some(ERR_INCONSISTENT));

    // The same seed without corruption is clean — the sentinel is caused
    // by the corruption, not the workload.
    let clean = ChainSpec::new(4_000, 0xC0DE);
    assert_eq!(run_crcverify_shuffle(&clean).error_code, None);
}

#[test]
fn dma_tag_collision_between_stages_is_namespaced() {
    // bloom → shuffle: BOTH stages issue a configure-time DMA read with
    // inner tag 1 (bitmap and histogram). The chain's per-stage tag
    // namespace must route each completion to its own stage on the real
    // fabric — a collision would hand the histogram to the Bloom stage.
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let client = tb.pin(CLIENT, 1 << 20);
    let server = tb.pin(SERVER, 2 << 20);

    let members: Vec<u64> = (0..512u64).filter(|v| v % 3 == 0).collect();
    let mut bf = BloomFilter::new(16, 4);
    for &m in &members {
        bf.insert(m);
    }
    let bitmap_addr = server;
    let hist_addr = server + (1 << 16);
    let part_base = server + (1 << 17);
    tb.mem(SERVER).write(bitmap_addr, &bf.to_bitmap());
    tb.mem(SERVER)
        .write(hist_addr, &encode_histogram(&[(part_base, 1 << 16)]));

    let chain = KernelChain::new(
        RpcOpCode(0x7F),
        vec![
            (
                Box::new(BloomKernel::new()) as Box<dyn strom::kernels::Kernel>,
                StageRoute::CaptureDmaWrites,
            ),
            (Box::new(ShuffleKernel::new()), StageRoute::Handoff),
        ],
    );
    tb.deploy_kernel(SERVER, Box::new(chain));
    let params = strom::kernels::ChainParams {
        stages: vec![
            BloomParams {
                bitmap_addr,
                dest_addr: server + (1 << 18), // sizing only; bursts are captured
                dest_capacity: 1 << 18,
                log2_bits: 16,
                probes: 4,
                target_address: client,
            }
            .encode(),
            ShuffleParams {
                histogram_addr: hist_addr,
                num_partitions: 1,
            }
            .encode(),
        ],
    }
    .encode();
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode(0x7F),
            params,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let values: Vec<u64> = (0..512u64).collect();
    let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    tb.mem(CLIENT).write(client + 4096, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode(0x7F),
            local_vaddr: client + 4096,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    // Members (plus possible false positives) flowed bloom → shuffle and
    // landed in the single partition, in stream order.
    let kept: Vec<u64> = values.iter().copied().filter(|&v| bf.contains(v)).collect();
    let expect: Vec<u8> = kept.iter().flat_map(|v| v.to_le_bytes()).collect();
    assert_eq!(tb.mem(SERVER).read(part_base, expect.len()), expect);
    for &m in &members {
        assert!(kept.contains(&m), "no false negatives through the chain");
    }
    // The Bloom stage's own result region stayed empty (bursts captured).
    let leaked = tb.mem(SERVER).read(server + (1 << 18), 4096);
    assert!(leaked.iter().all(|&b| b == 0));
}

#[test]
fn chain_reruns_are_deterministic_under_chaos() {
    // 24 chaos seeds, both chains: a same-seed rerun must reproduce the
    // identical ChainRun (fingerprint, elapsed, retransmissions).
    let outcomes = parallel_map((0..24u64).collect(), default_workers(), |seed| {
        let mut spec = ChainSpec::new(1_500, 0x50AC ^ seed);
        spec.fault = chaos_model(seed);
        spec.trace_capacity = Some(1 << 12);
        let a = (run_filter_agg_hll(&spec), run_crcverify_shuffle(&spec));
        let b = (run_filter_agg_hll(&spec), run_crcverify_shuffle(&spec));
        (seed, a, b)
    });
    for (seed, a, b) in outcomes {
        assert_eq!(a, b, "seed {seed}: chain rerun diverged");
    }
}
