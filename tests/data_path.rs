//! Integration tests of the plain RDMA data path: one-sided WRITE and
//! READ across the full simulated stack (host command → packets → PSN
//! machinery → DMA → memory).

use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::SimRng;

const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

#[test]
fn write_sizes_sweep_delivers_exact_bytes() {
    let mut tb = testbed();
    let src = tb.pin(0, 8 << 20);
    let dst = tb.pin(1, 8 << 20);
    let mut rng = SimRng::seed(1);
    // Exercise boundary sizes around the 1440 B payload budget.
    for &len in &[
        1u32, 63, 64, 1439, 1440, 1441, 2880, 2881, 100_000, 1_000_000,
    ] {
        let mut data = vec![0u8; len as usize];
        rng.fill_bytes(&mut data);
        tb.mem(0).write(src, &data);
        let watch = tb.add_watch(1, dst, u64::from(len));
        tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len,
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(tb.mem(1).read(dst, len as usize), data, "len = {len}");
        tb.run_until_idle();
    }
}

#[test]
fn read_sizes_sweep_fetches_exact_bytes() {
    let mut tb = testbed();
    let dst = tb.pin(0, 8 << 20);
    let src = tb.pin(1, 8 << 20);
    let mut rng = SimRng::seed(2);
    for &len in &[1u32, 64, 1440, 1441, 4096, 777_777] {
        let mut data = vec![0u8; len as usize];
        rng.fill_bytes(&mut data);
        tb.mem(1).write(src, &data);
        let h = tb.post(
            0,
            QP,
            WorkRequest::Read {
                remote_vaddr: src,
                local_vaddr: dst,
                len,
            },
        );
        tb.run_until_complete(0, h);
        assert_eq!(tb.mem(0).read(dst, len as usize), data, "len = {len}");
        tb.run_until_idle();
    }
}

#[test]
fn writes_crossing_huge_page_boundaries() {
    // The TLB must split the DMA commands; the data must still land
    // contiguously in virtual space.
    let mut tb = testbed();
    let src = tb.pin(0, 8 << 20);
    let dst = tb.pin(1, 8 << 20);
    let page = strom::mem::HUGE_PAGE_SIZE;
    let len = 64 * 1024u32;
    let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
    // Straddle the first page boundary on both sides.
    let src_off = page - 1000;
    let dst_off = page - 31_000;
    tb.mem(0).write(src + src_off, &data);
    let watch = tb.add_watch(1, dst + dst_off, u64::from(len));
    tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst + dst_off,
            local_vaddr: src + src_off,
            len,
        },
    );
    tb.run_until_watch(watch);
    assert_eq!(tb.mem(1).read(dst + dst_off, len as usize), data);
    tb.run_until_idle();
}

#[test]
fn bidirectional_traffic_on_one_qp() {
    // Both nodes write to each other simultaneously on the same QP —
    // the two direction's PSN spaces are independent.
    let mut tb = testbed();
    let a = tb.pin(0, 4 << 20);
    let b = tb.pin(1, 4 << 20);
    let data_a: Vec<u8> = (0..50_000u32).map(|i| (i % 13) as u8).collect();
    let data_b: Vec<u8> = (0..60_000u32).map(|i| (i % 17) as u8).collect();
    tb.mem(0).write(a, &data_a);
    tb.mem(1).write(b, &data_b);
    let w_b = tb.add_watch(1, b + (2 << 20), data_a.len() as u64);
    let w_a = tb.add_watch(0, a + (2 << 20), data_b.len() as u64);
    tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: b + (2 << 20),
            local_vaddr: a,
            len: data_a.len() as u32,
        },
    );
    tb.post(
        1,
        QP,
        WorkRequest::Write {
            remote_vaddr: a + (2 << 20),
            local_vaddr: b,
            len: data_b.len() as u32,
        },
    );
    tb.run_until_watch(w_b);
    tb.run_until_watch(w_a);
    assert_eq!(tb.mem(1).read(b + (2 << 20), data_a.len()), data_a);
    assert_eq!(tb.mem(0).read(a + (2 << 20), data_b.len()), data_b);
    tb.run_until_idle();
}

#[test]
fn many_qps_interleave_independently() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    let qps: Vec<u32> = (1..=8).collect();
    for &qp in &qps {
        tb.connect_qp(qp);
    }
    let src = tb.pin(0, 4 << 20);
    let dst = tb.pin(1, 4 << 20);
    let mut handles = Vec::new();
    for (i, &qp) in qps.iter().enumerate() {
        let off = i as u64 * 100_000;
        let data = vec![qp as u8; 100_000];
        tb.mem(0).write(src + off, &data);
        handles.push((
            qp,
            off,
            tb.post(
                0,
                qp,
                WorkRequest::Write {
                    remote_vaddr: dst + off,
                    local_vaddr: src + off,
                    len: 100_000,
                },
            ),
        ));
    }
    for (qp, off, h) in handles {
        tb.run_until_complete(0, h);
        assert_eq!(
            tb.mem(1).read(dst + off, 100_000),
            vec![qp as u8; 100_000],
            "QP {qp}"
        );
    }
    tb.run_until_idle();
}

#[test]
fn hundred_gig_config_moves_data_too() {
    let mut tb = Testbed::new(NicConfig::hundred_gig());
    tb.connect_qp(QP);
    let src = tb.pin(0, 4 << 20);
    let dst = tb.pin(1, 4 << 20);
    let data: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    tb.mem(0).write(src, &data);
    let t0 = tb.now();
    let watch = tb.add_watch(1, dst, data.len() as u64);
    tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    let t1 = tb.run_until_watch(watch);
    assert_eq!(tb.mem(1).read(dst, data.len()), data);
    // 2 MB at ~88 Gbit/s ≈ 190 µs — an order of magnitude faster than 10G.
    let us = (t1 - t0) as f64 / 1e6;
    assert!(us < 400.0, "2 MB at 100G took {us} µs");
    tb.run_until_idle();
}

#[test]
fn zero_length_write_completes() {
    let mut tb = testbed();
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    let h = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 0,
        },
    );
    let t = tb.run_until_complete(0, h);
    assert!(t > 0);
    tb.run_until_idle();
}

#[test]
fn write_then_read_round_trips_through_remote_memory() {
    let mut tb = testbed();
    let local = tb.pin(0, 2 << 20);
    let remote = tb.pin(1, 2 << 20);
    let data = b"persistent remote state".to_vec();
    tb.mem(0).write(local, &data);
    let h = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: remote,
            local_vaddr: local,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(0, h);
    // Read it back into a different local buffer.
    let h = tb.post(
        0,
        QP,
        WorkRequest::Read {
            remote_vaddr: remote,
            local_vaddr: local + (1 << 20),
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(0, h);
    assert_eq!(tb.mem(0).read(local + (1 << 20), data.len()), data);
    tb.run_until_idle();
}
