//! Integration tests of the paper's secondary mechanisms: CPU fallback
//! for unmatched RPCs (§5.1), local kernel invocation (§3.5/§5.2), and
//! send kernels (§3.5).

use bytes::Bytes;

use strom::kernels::hll_kernel::HllKernel;
use strom::kernels::layouts::{build_linked_list, value_pattern};
use strom::kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom::kernels::traversal::TraversalParams;
use strom::mem::HostMemory;
use strom::nic::{CpuFallback, NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::time::{TimeDelta, MICROS, NANOS};
use strom::wire::bth::Qpn;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

/// A CPU fallback that executes the traversal semantics in software —
/// the configuration the paper describes for kernels not present on the
/// NIC.
struct SoftwareTraversal;

impl CpuFallback for SoftwareTraversal {
    fn handle(
        &mut self,
        mem: &mut HostMemory,
        _qpn: Qpn,
        params: &Bytes,
    ) -> Option<(u64, Bytes, TimeDelta)> {
        let p = TraversalParams::decode(params)?;
        let mut addr = p.remote_address;
        let mut hops = 0u64;
        loop {
            let elem = mem.read(addr, 64);
            hops += 1;
            let key = u64::from_le_bytes(elem[0..8].try_into().unwrap());
            let next = u64::from_le_bytes(elem[8..16].try_into().unwrap());
            let vptr = u64::from_le_bytes(elem[16..24].try_into().unwrap());
            if key == p.key {
                let value = mem.read(vptr, p.value_size as usize);
                // ~80 ns of DRAM latency per dependent hop.
                return Some((p.target_address, Bytes::from(value), hops * 80 * NANOS));
            }
            if next == 0 {
                return Some((
                    p.target_address,
                    Bytes::copy_from_slice(&strom::kernels::framework::error_word(
                        strom::kernels::framework::ERR_NOT_FOUND,
                    )),
                    hops * 80 * NANOS,
                ));
            }
            addr = next;
        }
    }
}

#[test]
fn cpu_fallback_answers_unmatched_rpcs() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let server_buf = tb.pin(SERVER, 1 << 20);
    // NO kernel deployed — only the CPU fallback.
    tb.set_cpu_fallback(SERVER, RpcOpCode::TRAVERSAL, Box::new(SoftwareTraversal));

    let keys = [3u64, 6, 9, 12];
    let list = build_linked_list(tb.mem(SERVER), server_buf, &keys, 96);
    let watch = tb.add_watch(CLIENT, client_buf, 96);
    let t0 = tb.now();
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(list.head, 9, 96, client_buf).encode(),
        },
    );
    let t1 = tb.run_until_watch(watch);
    assert_eq!(tb.mem(CLIENT).read(client_buf, 96), value_pattern(9, 96));
    // The fallback involves the remote CPU but the data is correct; it is
    // slower than a kernel would be only by the host handoff.
    assert!((t1 - t0) / MICROS < 30);
    tb.run_until_idle();
    assert_eq!(
        tb.fabric(SERVER).unmatched(),
        1,
        "the fabric saw no matching kernel"
    );
}

#[test]
fn unmatched_rpc_without_fallback_is_counted() {
    let mut tb = testbed();
    tb.pin(CLIENT, 1 << 20);
    tb.pin(SERVER, 1 << 20);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode(0xBEEF),
            params: Bytes::from_static(b"nobody home"),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    assert_eq!(tb.fabric(SERVER).unmatched(), 1);
}

#[test]
fn local_invocation_shuffles_before_transmission() {
    // Footnote 9: "The shuffling kernel can also be invoked on the local
    // network card" — here the *local* NIC partitions into local memory
    // (the send-side variant of the experiment).
    let mut tb = testbed();
    let base = tb.pin(CLIENT, 8 << 20);
    tb.deploy_kernel(CLIENT, Box::new(ShuffleKernel::new()));

    let parts = 16u32;
    let cap = 1u32 << 18;
    let bases: Vec<(u64, u32)> = (0..u64::from(parts))
        .map(|i| (base + (4 << 20) + i * u64::from(cap), cap))
        .collect();
    tb.mem(CLIENT).write(base, &encode_histogram(&bases));
    tb.post_local_rpc(
        CLIENT,
        QP,
        RpcOpCode::SHUFFLE,
        ShuffleParams {
            histogram_addr: base,
            num_partitions: parts,
        }
        .encode(),
    );
    tb.run_until_idle();

    // Stream local data through the local kernel via the send tap path:
    // feed directly (local invocation uses the same roceDataIn stream).
    let values: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D))
        .collect();
    let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    tb.mem(CLIENT).write(base + (2 << 20), &data);
    tb.set_send_tap(CLIENT, RpcOpCode::SHUFFLE);
    // A self-addressed write is not possible on a two-node testbed;
    // send to the server, with the local kernel observing the stream.
    let dst = tb.pin(SERVER, 2 << 20);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: base + (2 << 20),
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    // The local kernel partitioned everything it saw into client memory.
    let reference = strom::baselines::cpu_partition::software_partition(&values, parts as usize);
    for (pid, (pbase, _)) in bases.iter().enumerate() {
        let want: Vec<u8> = reference.partitions[pid]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        assert_eq!(
            tb.mem(CLIENT).read(*pbase, want.len()),
            want,
            "partition {pid}"
        );
    }
    // And the wire data arrived unmodified at the server.
    assert_eq!(tb.mem(SERVER).read(dst, data.len()), data);
}

#[test]
fn send_kernel_sketches_outgoing_stream() {
    // §3.5: a send kernel processes data before it is sent. Here the
    // sender's NIC runs HLL over its own outgoing stream.
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let dst = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(CLIENT, Box::new(HllKernel::new()));
    tb.set_send_tap(CLIENT, RpcOpCode::HLL);

    let n = 20_000u64;
    let data: Vec<u8> = (0..n).flat_map(|i| (i % 5000).to_le_bytes()).collect();
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    assert_eq!(
        tb.mem(SERVER).read(dst, data.len()),
        data,
        "stream unmodified"
    );
    let kernel = tb
        .fabric(CLIENT)
        .kernel(RpcOpCode::HLL)
        .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
        .expect("send kernel deployed");
    assert_eq!(kernel.items(), n);
    let e = kernel.estimate();
    assert!((e - 5000.0).abs() / 5000.0 < 0.05, "estimate = {e}");
}

#[test]
fn send_and_receive_kernels_can_run_together() {
    // §3.5: "combinations thereof (send-receive kernels) to implement
    // complex protocols" — both NICs sketch the same stream and must
    // agree exactly.
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let dst = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(CLIENT, Box::new(HllKernel::new()));
    tb.set_send_tap(CLIENT, RpcOpCode::HLL);
    tb.deploy_kernel(SERVER, Box::new(HllKernel::new()));
    tb.set_receive_tap(SERVER, RpcOpCode::HLL);

    let data: Vec<u8> = (0..30_000u64)
        .flat_map(|i| (i % 7777).to_le_bytes())
        .collect();
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let sketch = |node: usize| {
        tb.fabric(node)
            .kernel(RpcOpCode::HLL)
            .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
            .map(|h| (h.items(), h.estimate()))
            .expect("kernel")
    };
    assert_eq!(
        sketch(CLIENT),
        sketch(SERVER),
        "both ends saw the same stream"
    );
}
