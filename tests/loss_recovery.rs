//! Integration tests of reliability under injected frame loss: the PSN
//! windows, NAK path, and retransmission timers of §4.1.

use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::SimRng;

const QP: u32 = 1;

fn lossy_testbed(rate: f64) -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb.set_loss_rate(rate);
    tb
}

#[test]
fn single_packet_write_survives_heavy_loss() {
    let mut tb = lossy_testbed(0.3);
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    for i in 0..20u64 {
        let data = vec![i as u8 + 1; 64];
        tb.mem(0).write(src, &data);
        let h = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst + i * 64,
                local_vaddr: src,
                len: 64,
            },
        );
        tb.run_until_complete(0, h);
        tb.run_until_idle();
        assert_eq!(tb.mem(1).read(dst + i * 64, 64), data, "write {i}");
    }
    assert!(tb.retransmissions(0) > 0, "30% loss must cause retransmits");
}

#[test]
fn multi_packet_write_data_is_never_corrupted_by_loss() {
    for seed_loss in [0.01f64, 0.05, 0.15] {
        let mut tb = lossy_testbed(seed_loss);
        let src = tb.pin(0, 4 << 20);
        let dst = tb.pin(1, 4 << 20);
        let mut rng = SimRng::seed(7);
        let mut data = vec![0u8; 300_000];
        rng.fill_bytes(&mut data);
        tb.mem(0).write(src, &data);
        let h = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: data.len() as u32,
            },
        );
        tb.run_until_complete(0, h);
        tb.run_until_idle();
        assert_eq!(
            tb.mem(1).read(dst, data.len()),
            data,
            "loss rate {seed_loss}"
        );
    }
}

#[test]
fn reads_survive_loss() {
    let mut tb = lossy_testbed(0.05);
    let dst = tb.pin(0, 4 << 20);
    let src = tb.pin(1, 4 << 20);
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
    tb.mem(1).write(src, &data);
    let h = tb.post(
        0,
        QP,
        WorkRequest::Read {
            remote_vaddr: src,
            local_vaddr: dst,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    assert_eq!(tb.mem(0).read(dst, data.len()), data);
}

#[test]
fn lost_ack_is_recovered_by_duplicate_reack() {
    // Even when only ACKs are lost, the write completes: the timer
    // retransmits, the responder classifies the packets as duplicates and
    // re-acknowledges them (§4.1's duplicate PSN region).
    let mut tb = lossy_testbed(0.25);
    let src = tb.pin(0, 1 << 20);
    let dst = tb.pin(1, 1 << 20);
    tb.mem(0).write(src, &[0x42u8; 1000]);
    for i in 0..10u64 {
        let h = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst + i * 1000,
                local_vaddr: src,
                len: 1000,
            },
        );
        tb.run_until_complete(0, h);
        tb.run_until_idle();
    }
    assert_eq!(tb.mem(1).read(dst + 9000, 1000), vec![0x42u8; 1000]);
}

#[test]
fn loss_statistics_are_accounted() {
    let mut tb = lossy_testbed(0.1);
    let src = tb.pin(0, 2 << 20);
    let dst = tb.pin(1, 2 << 20);
    tb.mem(0).write(src, &vec![1u8; 1 << 20]);
    let h = tb.post(
        0,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: 1 << 20,
        },
    );
    tb.run_until_complete(0, h);
    tb.run_until_idle();
    let lost = tb.frames_lost(1) + tb.frames_lost(0);
    assert!(lost > 0, "10% loss on ~730 packets");
    assert!(
        tb.retransmissions(0) >= lost / 2,
        "every loss needs recovery work"
    );
}

#[test]
fn determinism_holds_under_loss() {
    let run = |seed_shift: u64| {
        let mut cfg = NicConfig::ten_gig();
        cfg.seed ^= seed_shift;
        let mut tb = Testbed::new(cfg);
        tb.connect_qp(QP);
        tb.set_loss_rate(0.07);
        let src = tb.pin(0, 2 << 20);
        let dst = tb.pin(1, 2 << 20);
        tb.mem(0).write(src, &vec![9u8; 500_000]);
        let h = tb.post(
            0,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst,
                local_vaddr: src,
                len: 500_000,
            },
        );
        let t = tb.run_until_complete(0, h);
        tb.run_until_idle();
        (t, tb.retransmissions(0), tb.frames_lost(1))
    };
    assert_eq!(run(0), run(0), "identical seeds, identical traces");
    assert_ne!(run(0), run(0xdead), "different seeds, different losses");
}
