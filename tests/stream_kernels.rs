//! Integration tests of the stream kernels (shuffle §6.4, HLL §7.2):
//! RPC WRITE streaming, receive-path taps, and functional verification of
//! the partitioned/sketched data.

use strom::baselines::cpu_partition::software_partition;
use strom::kernels::hll_kernel::{HllKernel, HllParams};
use strom::kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::SimRng;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    tb
}

/// Sets up the shuffle kernel with `parts` partition regions on the
/// server; returns the per-partition base addresses.
fn configure_shuffle(tb: &mut Testbed, server_base: u64, parts: u32, capacity: u32) -> Vec<u64> {
    tb.deploy_kernel(SERVER, Box::new(ShuffleKernel::new()));
    let bases: Vec<u64> = (0..u64::from(parts))
        .map(|i| server_base + (1 << 20) + i * u64::from(capacity))
        .collect();
    let histogram = encode_histogram(&bases.iter().map(|&b| (b, capacity)).collect::<Vec<_>>());
    tb.mem(SERVER).write(server_base, &histogram);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::SHUFFLE,
            params: ShuffleParams {
                histogram_addr: server_base,
                num_partitions: parts,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    bases
}

#[test]
fn shuffle_rpc_write_partitions_match_software() {
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let server = tb.pin(SERVER, 16 << 20);
    let parts = 32u32;
    let bases = configure_shuffle(&mut tb, server, parts, 1 << 18);

    let mut rng = SimRng::seed(42);
    let n = 50_000u64;
    let mut data = vec![0u8; (n * 8) as usize];
    rng.fill_bytes(&mut data);
    tb.mem(CLIENT).write(src, &data);

    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let values: Vec<u64> = data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let want = software_partition(&values, parts as usize);
    for (pid, base) in bases.iter().enumerate() {
        let expected: Vec<u8> = want.partitions[pid]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let got = tb.mem(SERVER).read(*base, expected.len());
        assert_eq!(got, expected, "partition {pid}");
    }
}

#[test]
fn shuffle_works_over_lossy_link() {
    let mut tb = testbed();
    tb.set_loss_rate(0.03);
    let src = tb.pin(CLIENT, 4 << 20);
    let server = tb.pin(SERVER, 8 << 20);
    let parts = 8u32;
    let bases = configure_shuffle(&mut tb, server, parts, 1 << 18);

    let mut rng = SimRng::seed(43);
    let n = 10_000u64;
    let mut data = vec![0u8; (n * 8) as usize];
    rng.fill_bytes(&mut data);
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    // The reliable transport means the kernel saw every tuple exactly
    // once despite retransmissions (duplicates are dropped before the
    // kernel).
    let values: Vec<u64> = data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let want = software_partition(&values, parts as usize);
    let mut total = 0usize;
    for (pid, base) in bases.iter().enumerate() {
        let expected: Vec<u8> = want.partitions[pid]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        assert_eq!(
            tb.mem(SERVER).read(*base, expected.len()),
            expected,
            "partition {pid}"
        );
        total += expected.len();
    }
    assert_eq!(total, data.len());
    assert!(tb.retransmissions(CLIENT) > 0, "loss must have occurred");
}

#[test]
fn hll_tap_sketches_write_stream_without_altering_it() {
    let mut tb = testbed();
    let src = tb.pin(CLIENT, 4 << 20);
    let dst = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(SERVER, Box::new(HllKernel::new()));
    tb.set_receive_tap(SERVER, RpcOpCode::HLL);

    // 30k items, 10k distinct.
    let mut rng = SimRng::seed(44);
    let n = 30_000u64;
    let distinct = 10_000u64;
    let mut data = Vec::with_capacity((n * 8) as usize);
    for _ in 0..n {
        data.extend_from_slice(&rng.below(distinct).to_le_bytes());
    }
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    // Data in memory is untouched by the tap.
    assert_eq!(tb.mem(SERVER).read(dst, data.len()), data);
    // The kernel saw every item and estimates the distinct count.
    let kernel = tb
        .fabric(SERVER)
        .kernel(RpcOpCode::HLL)
        .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
        .expect("kernel deployed");
    assert_eq!(kernel.items(), n);
    let e = kernel.estimate();
    let truth = {
        let mut s: Vec<u64> = data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        s.sort_unstable();
        s.dedup();
        s.len() as f64
    };
    assert!((e - truth).abs() / truth < 0.05, "estimate {e} vs {truth}");
}

#[test]
fn hll_snapshot_rpc_returns_estimate_to_client() {
    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 1 << 20);
    let src = tb.pin(CLIENT, 2 << 20);
    let dst = tb.pin(SERVER, 2 << 20);
    tb.deploy_kernel(SERVER, Box::new(HllKernel::new()));
    tb.set_receive_tap(SERVER, RpcOpCode::HLL);

    let data: Vec<u8> = (0..5000u64).flat_map(|i| i.to_le_bytes()).collect();
    tb.mem(CLIENT).write(src, &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: dst,
            local_vaddr: src,
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    // Ask the kernel for its snapshot via the RPC path.
    let watch = tb.add_watch(CLIENT, client_buf, 16);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::HLL,
            params: HllParams {
                target_address: client_buf,
            }
            .encode(),
        },
    );
    tb.run_until_watch(watch);
    let snapshot = tb.mem(CLIENT).read(client_buf, 16);
    let (estimate, items) = HllKernel::decode_snapshot(&snapshot).unwrap();
    assert_eq!(items, 5000);
    assert!(
        (estimate - 5000.0).abs() / 5000.0 < 0.05,
        "estimate {estimate}"
    );
    tb.run_until_idle();
}

#[test]
fn multi_kernel_deployment_dispatches_by_opcode() {
    // §5.1: "enables multi-kernel deployments on the remote NIC".
    use strom::kernels::consistency::{ConsistencyKernel, ConsistencyParams};
    use strom::kernels::get::{GetKernel, GetParams};
    use strom::kernels::layouts::{build_hash_table, build_object_store, value_pattern};
    use strom::kernels::traversal::TraversalKernel;

    let mut tb = testbed();
    let client_buf = tb.pin(CLIENT, 2 << 20);
    let server = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));
    tb.deploy_kernel(SERVER, Box::new(ConsistencyKernel::new()));
    tb.deploy_kernel(SERVER, Box::new(GetKernel::new()));

    let ht = build_hash_table(tb.mem(SERVER), server, 128, &[5, 6, 7], 64);
    let store = build_object_store(tb.mem(SERVER), server + (2 << 20), 1, 128);

    // GET kernel.
    let w1 = tb.add_watch(CLIENT, client_buf, 64);
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::GET,
            params: GetParams {
                entry_addr: ht.entry_addr(6),
                key: 6,
                target_address: client_buf,
                chained: false,
            }
            .encode(),
        },
    );
    tb.run_until_watch(w1);
    assert_eq!(tb.mem(CLIENT).read(client_buf, 64), value_pattern(6, 64));

    // Consistency kernel, same NIC, different op-code.
    let size = store.object_size();
    let w2 = tb.add_watch(CLIENT, client_buf + 4096, u64::from(size));
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::CONSISTENCY,
            params: ConsistencyParams {
                object_addr: store.object_addrs[0],
                object_len: size,
                target_address: client_buf + 4096,
            }
            .encode(),
        },
    );
    tb.run_until_watch(w2);
    assert!(strom::kernels::consistency::verify_object(
        &tb.mem(CLIENT).read(client_buf + 4096, size as usize)
    ));
    tb.run_until_idle();
    assert_eq!(tb.fabric(SERVER).completed(), 2);
    assert_eq!(tb.fabric(SERVER).unmatched(), 0);
}
