//! Randomized tests at the full-testbed level: arbitrary operation
//! mixes, arbitrary loss rates — data integrity and determinism must
//! hold. Driven by the deterministic [`SimRng`] with fixed seeds.

use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::SimRng;

const QP: u32 = 1;

/// One randomly generated operation.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u32 },
    Read { off: u64, len: u32 },
}

fn rand_ops(rng: &mut SimRng, max: u64) -> Vec<Op> {
    (0..rng.range(1, max))
        .map(|_| {
            let off = rng.below(1 << 20);
            let len = rng.range(1, 20_000) as u32;
            if rng.chance(0.5) {
                Op::Write { off, len }
            } else {
                Op::Read { off, len }
            }
        })
        .collect()
}

fn run_ops(ops: &[Op], loss: f64, seed: u64) -> (Vec<u8>, Vec<u8>, u64) {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_loss_rate(loss);
    let a = tb.pin(0, 4 << 20);
    let b = tb.pin(1, 4 << 20);
    // Node 0's first 2 MB hold its source data; node 1's first 2 MB hold
    // the remote data reads fetch.
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut init = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut init);
    tb.mem(0).write(a, &init);
    rng.fill_bytes(&mut init);
    tb.mem(1).write(b, &init);

    for op in ops {
        let h = match *op {
            Op::Write { off, len } => tb.post(
                0,
                QP,
                WorkRequest::Write {
                    remote_vaddr: b + (2 << 20) + off,
                    local_vaddr: a + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
            Op::Read { off, len } => tb.post(
                0,
                QP,
                WorkRequest::Read {
                    remote_vaddr: b + off,
                    local_vaddr: a + (2 << 20) + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
        };
        tb.run_until_complete(0, h);
    }
    tb.run_until_idle();
    let remote_image = tb.mem(1).read(b + (2 << 20), 2 << 20);
    let local_image = tb.mem(0).read(a + (2 << 20), 2 << 20);
    let retx = tb.retransmissions(0);
    (remote_image, local_image, retx)
}

/// The reference: apply the same ops against plain byte arrays.
fn run_reference(ops: &[Op], seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut src);
    let mut remote_src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut remote_src);
    let mut remote = vec![0u8; 2 << 20];
    let mut local = vec![0u8; 2 << 20];
    for op in ops {
        match *op {
            Op::Write { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                remote[off..off + len].copy_from_slice(&src[off..off + len]);
            }
            Op::Read { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                local[off..off + len].copy_from_slice(&remote_src[off..off + len]);
            }
        }
    }
    (remote, local)
}

/// Any sequence of writes and reads over a lossless wire produces
/// exactly the same memory images as the byte-array reference.
#[test]
fn op_sequences_match_reference() {
    let mut rng = SimRng::seed(0x0b5);
    for _ in 0..8 {
        let ops = rand_ops(&mut rng, 12);
        let seed = rng.next_u64();
        let (remote, local, retx) = run_ops(&ops, 0.0, seed);
        let (want_remote, want_local) = run_reference(&ops, seed);
        assert_eq!(retx, 0);
        assert_eq!(remote, want_remote);
        assert_eq!(local, want_local);
    }
}

/// The same holds under loss — the reliable transport hides it.
#[test]
fn op_sequences_survive_loss() {
    let mut rng = SimRng::seed(0x105);
    for _ in 0..6 {
        let ops = rand_ops(&mut rng, 6);
        let seed = rng.next_u64();
        let loss = 0.01 + rng.unit() * 0.14;
        let (remote, local, _) = run_ops(&ops, loss, seed);
        let (want_remote, want_local) = run_reference(&ops, seed);
        assert_eq!(remote, want_remote);
        assert_eq!(local, want_local);
    }
}

/// Determinism: identical inputs produce identical traces, including
/// the retransmission count under loss.
#[test]
fn testbed_is_deterministic() {
    let mut rng = SimRng::seed(0xde7e);
    for _ in 0..4 {
        let ops = rand_ops(&mut rng, 5);
        let seed = rng.next_u64();
        let a = run_ops(&ops, 0.05, seed);
        let b = run_ops(&ops, 0.05, seed);
        assert_eq!(a, b);
    }
}
