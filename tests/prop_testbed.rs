//! Property-based tests at the full-testbed level: arbitrary operation
//! mixes, arbitrary loss rates — data integrity and determinism must hold.

use proptest::prelude::*;

use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::SimRng;

const QP: u32 = 1;

/// One randomly generated operation.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u32 },
    Read { off: u64, len: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u64..(1 << 20), 1u32..20_000, any::<bool>()).prop_map(|(off, len, is_write)| {
        if is_write {
            Op::Write { off, len }
        } else {
            Op::Read { off, len }
        }
    })
}

fn run_ops(ops: &[Op], loss: f64, seed: u64) -> (Vec<u8>, Vec<u8>, u64) {
    let mut cfg = NicConfig::ten_gig();
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    tb.connect_qp(QP);
    tb.set_loss_rate(loss);
    let a = tb.pin(0, 4 << 20);
    let b = tb.pin(1, 4 << 20);
    // Node 0's first 2 MB hold its source data; node 1's first 2 MB hold
    // the remote data reads fetch.
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut init = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut init);
    tb.mem(0).write(a, &init);
    rng.fill_bytes(&mut init);
    tb.mem(1).write(b, &init);

    for op in ops {
        let h = match *op {
            Op::Write { off, len } => tb.post(
                0,
                QP,
                WorkRequest::Write {
                    remote_vaddr: b + (2 << 20) + off,
                    local_vaddr: a + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
            Op::Read { off, len } => tb.post(
                0,
                QP,
                WorkRequest::Read {
                    remote_vaddr: b + off,
                    local_vaddr: a + (2 << 20) + off,
                    len: len.min(((1 << 20) - 1) as u32),
                },
            ),
        };
        tb.run_until_complete(0, h);
    }
    tb.run_until_idle();
    let remote_image = tb.mem(1).read(b + (2 << 20), 2 << 20);
    let local_image = tb.mem(0).read(a + (2 << 20), 2 << 20);
    let retx = tb.retransmissions(0);
    (remote_image, local_image, retx)
}

/// The reference: apply the same ops against plain byte arrays.
fn run_reference(ops: &[Op], seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SimRng::seed(seed ^ 0x1234);
    let mut src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut src);
    let mut remote_src = vec![0u8; 2 << 20];
    rng.fill_bytes(&mut remote_src);
    let mut remote = vec![0u8; 2 << 20];
    let mut local = vec![0u8; 2 << 20];
    for op in ops {
        match *op {
            Op::Write { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                remote[off..off + len].copy_from_slice(&src[off..off + len]);
            }
            Op::Read { off, len } => {
                let len = len.min(((1 << 20) - 1) as u32) as usize;
                let (off, len) = (off as usize, len);
                local[off..off + len].copy_from_slice(&remote_src[off..off + len]);
            }
        }
    }
    (remote, local)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of writes and reads over a lossless wire produces
    /// exactly the same memory images as the byte-array reference.
    #[test]
    fn op_sequences_match_reference(ops in prop::collection::vec(arb_op(), 1..12), seed in any::<u64>()) {
        let (remote, local, retx) = run_ops(&ops, 0.0, seed);
        let (want_remote, want_local) = run_reference(&ops, seed);
        prop_assert_eq!(retx, 0);
        prop_assert_eq!(remote, want_remote);
        prop_assert_eq!(local, want_local);
    }

    /// The same holds under loss — the reliable transport hides it.
    #[test]
    fn op_sequences_survive_loss(
        ops in prop::collection::vec(arb_op(), 1..6),
        seed in any::<u64>(),
        loss in 0.01f64..0.15,
    ) {
        let (remote, local, _) = run_ops(&ops, loss, seed);
        let (want_remote, want_local) = run_reference(&ops, seed);
        prop_assert_eq!(remote, want_remote);
        prop_assert_eq!(local, want_local);
    }

    /// Determinism: identical inputs produce identical traces, including
    /// the retransmission count under loss.
    #[test]
    fn testbed_is_deterministic(
        ops in prop::collection::vec(arb_op(), 1..5),
        seed in any::<u64>(),
    ) {
        let a = run_ops(&ops, 0.05, seed);
        let b = run_ops(&ops, 0.05, seed);
        prop_assert_eq!(a, b);
    }
}
