//! Quickstart: bring up a two-node StRoM testbed, move memory with
//! one-sided RDMA verbs, and time the operations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use strom::nic::{NicConfig, Testbed, WorkRequest};
use strom::sim::time::MICROS;

fn main() {
    // Two StRoM NICs connected back-to-back at 10 G (paper §6.1).
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(1);

    // Pin a megabyte on each host; the driver installs the huge pages in
    // each NIC's TLB (§4.3).
    let client_buf = tb.pin(0, 1 << 20);
    let server_buf = tb.pin(1, 1 << 20);

    // --- One-sided WRITE: client -> server -------------------------------
    let message = b"hello, smart remote memory!";
    tb.mem(0).write(client_buf, message);

    let watch = tb.add_watch(1, server_buf, message.len() as u64);
    let t0 = tb.now();
    tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: server_buf,
            local_vaddr: client_buf,
            len: message.len() as u32,
        },
    );
    let t1 = tb.run_until_watch(watch);
    let received = tb.mem(1).read(server_buf, message.len());
    println!(
        "WRITE  {:3} B delivered in {:.2} us: {:?}",
        message.len(),
        (t1 - t0) as f64 / MICROS as f64,
        String::from_utf8_lossy(&received)
    );
    assert_eq!(received, message);
    tb.run_until_idle();

    // --- One-sided READ: client <- server ---------------------------------
    tb.mem(1)
        .write(server_buf + 4096, b"served straight from DRAM");
    let watch = tb.add_watch(0, client_buf + 4096, 25);
    let t0 = tb.now();
    tb.post(
        0,
        1,
        WorkRequest::Read {
            remote_vaddr: server_buf + 4096,
            local_vaddr: client_buf + 4096,
            len: 25,
        },
    );
    let t1 = tb.run_until_watch(watch);
    let fetched = tb.mem(0).read(client_buf + 4096, 25);
    println!(
        "READ   {:3} B fetched   in {:.2} us: {:?}",
        25,
        (t1 - t0) as f64 / MICROS as f64,
        String::from_utf8_lossy(&fetched)
    );
    tb.run_until_idle();

    // --- A large, multi-packet WRITE --------------------------------------
    let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    tb.mem(0).write(client_buf, &big);
    let watch = tb.add_watch(1, server_buf, big.len() as u64);
    let t0 = tb.now();
    tb.post(
        0,
        1,
        WorkRequest::Write {
            remote_vaddr: server_buf,
            local_vaddr: client_buf,
            len: big.len() as u32,
        },
    );
    let t1 = tb.run_until_watch(watch);
    let secs = (t1 - t0) as f64 / 1e12;
    println!(
        "WRITE  100 KB ({} MTU packets) in {:.1} us = {:.2} Gbit/s",
        big.len().div_ceil(1440),
        (t1 - t0) as f64 / MICROS as f64,
        big.len() as f64 * 8.0 / 1e9 / secs
    );
    assert_eq!(tb.mem(1).read(server_buf, big.len()), big);
    tb.run_until_idle();

    println!(
        "quickstart complete at simulated t = {:.1} us",
        tb.now() as f64 / MICROS as f64
    );
}
