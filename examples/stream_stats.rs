//! Cardinality estimation as a by-product of data movement (§7.2).
//!
//! A storage node streams a data set to a compute node over 100 G RDMA.
//! The HLL kernel on the receiving NIC sketches the stream as a
//! bump-in-the-wire; afterwards the host reads the estimate without ever
//! having spent a CPU cycle on it. The example compares the kernel's
//! estimate with an 8-thread CPU HLL over the same data and with the true
//! cardinality.
//!
//! ```text
//! cargo run --release --example stream_stats
//! ```

use strom::baselines::{parallel_hll, CpuHllModel};
use strom::kernels::hll_kernel::HllKernel;
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::SimRng;

const STORAGE: usize = 0;
const COMPUTE: usize = 1;
const QP: u32 = 1;

fn main() {
    let mut tb = Testbed::new(NicConfig::hundred_gig());
    tb.connect_qp(QP);
    let src = tb.pin(STORAGE, 16 << 20);
    let dst = tb.pin(COMPUTE, 16 << 20);

    // Deploy the HLL kernel on the compute node's NIC and tap incoming
    // WRITE payload into it.
    tb.deploy_kernel(COMPUTE, Box::new(HllKernel::new()));
    tb.set_receive_tap(COMPUTE, RpcOpCode::HLL);

    // The data set: 1M items, ~400K distinct.
    let mut rng = SimRng::seed(99);
    let n_items = 1_000_000u64;
    let distinct = 400_000u64;
    let mut data = Vec::with_capacity((n_items * 8) as usize);
    for _ in 0..n_items {
        data.extend_from_slice(&rng.below(distinct).to_le_bytes());
    }
    let true_distinct = {
        let mut seen: Vec<u64> = data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len() as u64
    };
    tb.mem(STORAGE).write(src, &data);

    // Stream it across in 4 MB chunks.
    let t0 = tb.now();
    let mut off = 0u64;
    while off < data.len() as u64 {
        let chunk = (4u64 << 20).min(data.len() as u64 - off) as u32;
        let h = tb.post(
            STORAGE,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst + off,
                local_vaddr: src + off,
                len: chunk,
            },
        );
        tb.run_until_complete(STORAGE, h);
        off += u64::from(chunk);
    }
    tb.run_until_idle();
    let secs = (tb.now() - t0) as f64 / 1e12;
    let gbps = data.len() as f64 * 8.0 / 1e9 / secs;

    // The data arrived intact…
    assert_eq!(tb.mem(COMPUTE).read(dst, data.len()), data);

    // …and the NIC sketched it on the way past. The host reads the
    // estimate through the Controller's status registers (§4.3), which
    // the testbed exposes via the kernel fabric.
    let estimate = tb
        .fabric(COMPUTE)
        .kernel(RpcOpCode::HLL)
        .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
        .map(|h| h.estimate())
        .expect("HLL kernel deployed");

    // CPU comparison: 8 threads on the compute node.
    let cpu_sketch = parallel_hll(&data, 8, 14);
    let model = CpuHllModel::new();

    println!(
        "streamed {:.1} MB at {gbps:.1} Gbit/s with the HLL kernel in-line",
        data.len() as f64 / 1e6
    );
    println!();
    println!("true distinct items : {true_distinct}");
    println!(
        "NIC kernel estimate : {estimate:.0} ({:+.2}%)",
        (estimate / true_distinct as f64 - 1.0) * 100.0
    );
    println!("CPU (8t) estimate   : {:.0}", cpu_sketch.estimate());
    println!();
    println!(
        "the CPU route would cap at {:.1} Gbit/s with 8 threads (Fig 13a); the kernel keeps line rate (Fig 13b)",
        model.throughput_gbps(8)
    );
}
