//! Retransmission demo: reliable delivery over a lossy link.
//!
//! RoCE v2 is a *reliable* transport: the State Table's PSN windows detect
//! gaps (NAK sequence error) and duplicates, and the per-QP Retransmission
//! Timer recovers from lost ACKs (paper §4.1). This example injects frame
//! loss on the wire and shows the protocol machinery delivering every byte
//! intact — including StRoM RPCs, whose request and response packets ride
//! the same reliable transport.
//!
//! ```text
//! cargo run --release --example lossy_link
//! ```

use strom::kernels::layouts::{build_linked_list, value_pattern};
use strom::kernels::traversal::{TraversalKernel, TraversalParams};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

fn main() {
    for loss in [0.0f64, 0.01, 0.05, 0.10] {
        let mut tb = Testbed::new(NicConfig::ten_gig());
        tb.connect_qp(QP);
        tb.set_loss_rate(loss);
        let src = tb.pin(CLIENT, 8 << 20);
        let dst = tb.pin(SERVER, 8 << 20);
        tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));

        // A 2 MB transfer in 64 KB writes.
        let data: Vec<u8> = (0..(2 << 20) as u32).map(|i| (i % 253) as u8).collect();
        tb.mem(CLIENT).write(src, &data);
        let t0 = tb.now();
        let mut handles = Vec::new();
        for off in (0..data.len() as u64).step_by(64 << 10) {
            handles.push(tb.post(
                CLIENT,
                QP,
                WorkRequest::Write {
                    remote_vaddr: dst + off,
                    local_vaddr: src + off,
                    len: 64 << 10,
                },
            ));
        }
        for h in handles {
            tb.run_until_complete(CLIENT, h);
        }
        tb.run_until_idle();
        let xfer_secs = (tb.now() - t0) as f64 / 1e12;
        assert_eq!(
            tb.mem(SERVER).read(dst, data.len()),
            data,
            "bytes survive loss"
        );

        // And an RPC on top of the same lossy wire.
        let keys = [11u64, 22, 33, 44];
        let list = build_linked_list(tb.mem(SERVER), dst + (4 << 20), &keys, 64);
        let watch = tb.add_watch(CLIENT, src + (4 << 20), 64);
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: RpcOpCode::TRAVERSAL,
                params: TraversalParams::for_linked_list(list.head, 33, 64, src + (4 << 20))
                    .encode(),
            },
        );
        tb.run_until_watch(watch);
        assert_eq!(
            tb.mem(CLIENT).read(src + (4 << 20), 64),
            value_pattern(33, 64)
        );
        tb.run_until_idle();

        println!(
            "loss {:>4.1}% : 2 MB in {:>7.2} ms ({:>5.2} Gbit/s), {} frames lost, {} packets retransmitted, RPC ok",
            loss * 100.0,
            xfer_secs * 1e3,
            data.len() as f64 * 8.0 / 1e9 / xfer_secs,
            tb.frames_lost(SERVER) + tb.frames_lost(CLIENT),
            tb.retransmissions(CLIENT) + tb.retransmissions(SERVER),
        );
    }
    println!("\nevery byte arrived intact at every loss rate — the PSN windows and timers work.");
}
