//! A tour of StRoM's secondary mechanisms (§3.5, §5.1, §5.2):
//!
//! 1. **CPU fallback** — an RPC whose kernel is *not* deployed on the NIC
//!    is handled by a software implementation on the remote host.
//! 2. **Local invocation** — the host invokes a kernel on its *own* NIC.
//! 3. **Send + receive kernels** — both NICs process the same stream as
//!    it leaves one host and enters the other.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use bytes::Bytes;

use strom::kernels::hll_kernel::HllKernel;
use strom::kernels::layouts::{build_linked_list, value_pattern};
use strom::kernels::traversal::TraversalParams;
use strom::mem::HostMemory;
use strom::nic::{CpuFallback, NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::time::{TimeDelta, MICROS, NANOS};
use strom::wire::bth::Qpn;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;

/// The software traversal the server CPU runs when the kernel is absent.
struct SoftwareTraversal;

impl CpuFallback for SoftwareTraversal {
    fn handle(
        &mut self,
        mem: &mut HostMemory,
        _qpn: Qpn,
        params: &Bytes,
    ) -> Option<(u64, Bytes, TimeDelta)> {
        let p = TraversalParams::decode(params)?;
        let mut addr = p.remote_address;
        let mut hops = 0u64;
        loop {
            let elem = mem.read(addr, 64);
            hops += 1;
            let key = u64::from_le_bytes(elem[0..8].try_into().unwrap());
            let next = u64::from_le_bytes(elem[8..16].try_into().unwrap());
            let vptr = u64::from_le_bytes(elem[16..24].try_into().unwrap());
            if key == p.key {
                let value = mem.read(vptr, p.value_size as usize);
                return Some((p.target_address, Bytes::from(value), hops * 80 * NANOS));
            }
            if next == 0 {
                return None;
            }
            addr = next;
        }
    }
}

fn main() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.bring_up(); // Real ARP over the simulated wire.
    tb.connect_qp(QP);
    let client_buf = tb.pin(CLIENT, 4 << 20);
    let server_buf = tb.pin(SERVER, 4 << 20);

    // ---- 1. CPU fallback -------------------------------------------------
    tb.set_cpu_fallback(SERVER, RpcOpCode::TRAVERSAL, Box::new(SoftwareTraversal));
    let keys = [100u64, 200, 300];
    let list = build_linked_list(tb.mem(SERVER), server_buf, &keys, 64);
    let watch = tb.add_watch(CLIENT, client_buf, 64);
    let t0 = tb.now();
    tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::TRAVERSAL,
            params: TraversalParams::for_linked_list(list.head, 200, 64, client_buf).encode(),
        },
    );
    let t1 = tb.run_until_watch(watch);
    assert_eq!(tb.mem(CLIENT).read(client_buf, 64), value_pattern(200, 64));
    println!(
        "1. CPU fallback: no kernel deployed, the server CPU answered in {:.2} us \
         ({} unmatched RPC recorded)",
        (t1 - t0) as f64 / MICROS as f64,
        tb.fabric(SERVER).unmatched()
    );
    tb.run_until_idle();

    // ---- 2. Local invocation --------------------------------------------
    // The client sketches its OWN outgoing data set by invoking the HLL
    // kernel on its own NIC, then taps the send path.
    tb.deploy_kernel(CLIENT, Box::new(HllKernel::new()));
    tb.set_send_tap(CLIENT, RpcOpCode::HLL);
    let data: Vec<u8> = (0..100_000u64)
        .flat_map(|i| (i % 25_000).to_le_bytes())
        .collect();
    tb.mem(CLIENT).write(client_buf + (1 << 20), &data);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: server_buf + (1 << 20),
            local_vaddr: client_buf + (1 << 20),
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    let estimate = tb
        .fabric(CLIENT)
        .kernel(RpcOpCode::HLL)
        .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
        .map(|k| k.estimate())
        .unwrap();
    println!(
        "2. Send kernel: the CLIENT NIC sketched its outgoing stream: ~{estimate:.0} distinct \
         (true: 25000)"
    );

    // ---- 3. Receive kernel on the other side ----------------------------
    tb.deploy_kernel(SERVER, Box::new(HllKernel::new()));
    tb.set_receive_tap(SERVER, RpcOpCode::HLL);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Write {
            remote_vaddr: server_buf + (1 << 20),
            local_vaddr: client_buf + (1 << 20),
            len: data.len() as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    let server_estimate = tb
        .fabric(SERVER)
        .kernel(RpcOpCode::HLL)
        .and_then(|k| k.as_any().downcast_ref::<HllKernel>())
        .map(|k| k.estimate())
        .unwrap();
    println!(
        "3. Receive kernel: the SERVER NIC sketched the same stream on arrival: ~{server_estimate:.0}"
    );

    // ---- Controller status registers (§4.3) ------------------------------
    let s = tb.status(SERVER);
    println!(
        "\nserver status registers: {} frames rx, {} payload bytes, {} kernel invocations, {} unmatched RPCs",
        s.frames_rx, s.payload_bytes_rx, s.kernel_invocations, s.rpc_unmatched
    );
}
