//! Distributed radix shuffle of a tuple stream (paper §6.4 / Fig 11).
//!
//! The client streams 8 B tuples to the server. With the StRoM shuffle
//! kernel the receiving NIC partitions them on-the-fly into per-partition
//! regions of server memory; the baseline partitions on the sender's CPU
//! first. The example verifies both produce identical partitions and
//! compares execution time.
//!
//! ```text
//! cargo run --release --example shuffle_pipeline
//! ```

use strom::baselines::cpu_partition::{software_partition, CpuPartitionModel};
use strom::kernels::shuffle::{encode_histogram, ShuffleKernel, ShuffleParams};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::SimRng;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;
const PARTITIONS: u32 = 64;
const INPUT_MB: u64 = 8;

fn main() {
    let size = INPUT_MB << 20;
    let mut rng = SimRng::seed(2020);

    // Random input tuples.
    let mut input = vec![0u8; size as usize];
    rng.fill_bytes(&mut input);
    let tuples: Vec<u64> = input
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();

    // ---------------- StRoM: partition on the receiving NIC ----------------
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let src = tb.pin(CLIENT, size + (1 << 21));
    let part_cap = ((size / u64::from(PARTITIONS)) * 13 / 10) as u32;
    let server = tb.pin(
        SERVER,
        u64::from(PARTITIONS) * u64::from(part_cap) + (2 << 21),
    );
    tb.mem(CLIENT).write(src, &input);
    tb.deploy_kernel(SERVER, Box::new(ShuffleKernel::new()));

    // Histogram: where each partition lives.
    let regions: Vec<(u64, u32)> = (0..u64::from(PARTITIONS))
        .map(|i| (server + (1 << 21) + i * u64::from(part_cap), part_cap))
        .collect();
    let histogram = encode_histogram(&regions);
    tb.mem(SERVER).write(server, &histogram);
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::Rpc {
            rpc_op: RpcOpCode::SHUFFLE,
            params: ShuffleParams {
                histogram_addr: server,
                num_partitions: PARTITIONS,
            }
            .encode(),
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();

    let t0 = tb.now();
    let h = tb.post(
        CLIENT,
        QP,
        WorkRequest::RpcWrite {
            rpc_op: RpcOpCode::SHUFFLE,
            local_vaddr: src,
            len: size as u32,
        },
    );
    tb.run_until_complete(CLIENT, h);
    tb.run_until_idle();
    let strom_secs = (tb.now() - t0) as f64 / 1e12;

    // Verify against the reference partitioner, byte for byte.
    let reference = software_partition(&tuples, PARTITIONS as usize);
    let mut total = 0usize;
    for (pid, (region, _)) in regions.iter().enumerate() {
        let want: Vec<u8> = reference.partitions[pid]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let got = tb.mem(SERVER).read(*region, want.len());
        assert_eq!(got, want, "partition {pid} mismatch");
        total += want.len();
    }
    assert_eq!(total, size as usize);
    println!(
        "StRoM shuffle: {INPUT_MB} MB into {PARTITIONS} partitions in {strom_secs:.4} s \
         ({:.2} Gbit/s), verified byte-for-byte",
        size as f64 * 8.0 / 1e9 / strom_secs
    );

    // ------------- Baseline: partition on the sender CPU -------------------
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let staging = tb.pin(CLIENT, size + (1 << 21));
    let dst = tb.pin(SERVER, size + (1 << 21));
    let t0 = tb.now();
    let partitioned = software_partition(&tuples, PARTITIONS as usize);
    tb.advance(CpuPartitionModel::new().partition_time(size));
    let mut cursor = 0u64;
    let mut handles = Vec::new();
    for p in &partitioned.partitions {
        let bytes: Vec<u8> = p.iter().flat_map(|v| v.to_le_bytes()).collect();
        tb.mem(CLIENT).write(staging + cursor, &bytes);
        handles.push(tb.post(
            CLIENT,
            QP,
            WorkRequest::Write {
                remote_vaddr: dst + cursor,
                local_vaddr: staging + cursor,
                len: bytes.len() as u32,
            },
        ));
        cursor += bytes.len() as u64;
    }
    for h in handles {
        tb.run_until_complete(CLIENT, h);
    }
    tb.run_until_idle();
    let sw_secs = (tb.now() - t0) as f64 / 1e12;
    println!(
        "SW + RDMA WRITE: same shuffle in {sw_secs:.4} s ({:.2} Gbit/s)",
        size as f64 * 8.0 / 1e9 / sw_secs
    );
    println!(
        "\nStRoM is {:.2}x faster: partitioning rides along with the transfer instead of \
         costing an extra CPU pass.",
        sw_secs / strom_secs
    );
}
