//! A remote key-value store, three ways (paper §6.2 / Fig 8).
//!
//! The server holds a Pilaf-style hash table in pinned memory. The client
//! runs GETs via (1) two RDMA READs, (2) the StRoM traversal kernel in a
//! single round trip, and (3) an rpcgen-style TCP RPC — and prints the
//! latency of each.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use strom::baselines::{OneSidedClient, TcpRpcModel};
use strom::kernels::layouts::{build_hash_table, value_pattern};
use strom::kernels::traversal::{TraversalKernel, TraversalParams};
use strom::nic::{NicConfig, RpcOpCode, Testbed, WorkRequest};
use strom::sim::time::MICROS;

const CLIENT: usize = 0;
const SERVER: usize = 1;
const QP: u32 = 1;
const VALUE_SIZE: u32 = 512;

fn main() {
    let mut tb = Testbed::new(NicConfig::ten_gig());
    tb.connect_qp(QP);
    let client_buf = tb.pin(CLIENT, 4 << 20);
    let server_buf = tb.pin(SERVER, 4 << 20);
    tb.deploy_kernel(SERVER, Box::new(TraversalKernel::new()));

    // Populate the store: 200 keys, 512 B values.
    let keys: Vec<u64> = (1..=200).collect();
    let ht = build_hash_table(tb.mem(SERVER), server_buf, 4096, &keys, VALUE_SIZE);
    println!(
        "server: hash table with {} keys, {} B values, {} entries\n",
        keys.len(),
        VALUE_SIZE,
        4096
    );

    let probe_keys = [7u64, 42, 199];
    for &key in &probe_keys {
        // --- (1) two one-sided READs (Pilaf style) ---
        let mut client = OneSidedClient::new(CLIENT, QP, client_buf, 1 << 20);
        let t0 = tb.now();
        let (value, t1) = client.hash_table_get(&mut tb, ht.entry_addr(key), key);
        assert_eq!(value, value_pattern(key, VALUE_SIZE));
        let read_us = (t1 - t0) as f64 / MICROS as f64;
        tb.run_until_idle();

        // --- (2) StRoM traversal kernel: one round trip ---
        let target = client_buf + (2 << 20);
        let watch = tb.add_watch(CLIENT, target, u64::from(VALUE_SIZE));
        let t0 = tb.now();
        tb.post(
            CLIENT,
            QP,
            WorkRequest::Rpc {
                rpc_op: RpcOpCode::TRAVERSAL,
                params: TraversalParams::for_hash_table(
                    ht.entry_addr(key),
                    key,
                    VALUE_SIZE,
                    target,
                )
                .encode(),
            },
        );
        let t1 = tb.run_until_watch(watch);
        assert_eq!(
            tb.mem(CLIENT).read(target, VALUE_SIZE as usize),
            value_pattern(key, VALUE_SIZE)
        );
        let strom_us = (t1 - t0) as f64 / MICROS as f64;
        tb.run_until_idle();

        // --- (3) TCP RPC: the server CPU does the lookup ---
        let model = TcpRpcModel::new();
        let (value, lat) = model.hash_table_get(tb.mem(SERVER), ht.entry_addr(key), key);
        assert_eq!(value, value_pattern(key, VALUE_SIZE));
        let tcp_us = lat as f64 / MICROS as f64;

        println!(
            "GET key {key:4}: 2x RDMA READ {read_us:6.2} us | StRoM kernel {strom_us:6.2} us | TCP RPC {tcp_us:6.2} us"
        );
    }

    println!("\nStRoM saves one network round trip per GET and never touches the server CPU.");
}
